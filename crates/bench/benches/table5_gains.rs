//! Table 5 — "Juggler's training cost efficiency and general gains".
//!
//! Per application:
//! * *default cost*: average cost of the HiBench schedule across all
//!   cluster configurations (no recommendation — the end user guesses);
//! * *Juggler cost*: average cost of Juggler's schedules on their
//!   recommended configurations;
//! * savings per run, per-stage training costs, and the number of actual
//!   runs needed before training amortizes (optimization stages alone,
//!   prediction stage, and total).

use bench::print_table;

fn main() {
    let mut rows = Vec::new();
    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let params = w.paper_params();
        let spec = trained.target_spec;

        // Default: average over all configurations (the paper's Line 1).
        let default = w.build(&params).default_schedule().clone();
        let sweep = bench::sweep(w.as_ref(), &params, &default, spec);
        let default_cost = sweep
            .iter()
            .map(cluster_sim::RunReport::cost_machine_minutes)
            .sum::<f64>()
            / sweep.len() as f64;

        // Juggler: schedules on recommended configurations, averaged.
        let mut jcost = 0.0;
        for (i, rs) in trained.schedules.iter().enumerate() {
            let m = trained.machines_for(i, params.e(), params.f());
            jcost += bench::actual_run(w.as_ref(), &params, &rs.schedule, m, spec)
                .cost_machine_minutes();
        }
        jcost /= trained.schedules.len().max(1) as f64;

        let savings = default_cost - jcost;
        let savings_pct = savings / default_cost * 100.0;
        let opt_cost = trained.costs.optimization_machine_minutes();
        let pred_cost = trained.costs.time_models.machine_minutes;
        let runs_for = |training: f64| -> String {
            if savings <= 0.0 {
                "-".to_owned()
            } else {
                format!("{:.0}", (training / savings).ceil().max(1.0))
            }
        };

        rows.push(vec![
            w.name().to_owned(),
            format!("{default_cost:.1}"),
            format!("{jcost:.1}"),
            format!("{savings_pct:.0}%"),
            format!("{opt_cost:.1}"),
            runs_for(opt_cost),
            format!("{pred_cost:.1}"),
            runs_for(pred_cost),
            format!("{:.1}", opt_cost + pred_cost),
            runs_for(opt_cost + pred_cost),
        ]);
    }
    print_table(
        "Table 5: training cost efficiency and general gains (machine-min)",
        &[
            "app",
            "default cost",
            "Juggler cost",
            "savings/run",
            "opt. training",
            "#runs",
            "pred. training",
            "#runs",
            "total training",
            "#runs",
        ],
        &rows,
    );
    println!(
        "\nPaper reference (savings/run): LIR 78%, LOR 49%, PCA 90%, RFC 31%, SVM 41% — \
         ~4 runs amortize the optimization stages, ~43 the prediction stage."
    );
}
