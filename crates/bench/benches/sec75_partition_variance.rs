//! §7.5 — "Variance in data partition sizes".
//!
//! The paper's observations on an SVM run with schedule #2:
//!
//! * partition sizes vary — "some partitions are two times larger than
//!   others" — yet all partitions remain in memory;
//! * the task scheduler balances the *total* cached bytes per machine
//!   almost equally despite unequal task placement;
//! * stragglers cause a few first-iteration evictions (14 of 362 in the
//!   paper), fewer in the second (3), none from the third on — evicted
//!   partitions are re-admitted on other machines;
//! * this is why half the recommendations are near-optimal rather than
//!   optimal.

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, RunOptions};
use dagflow::DatasetId;
use workloads::{SupportVectorMachine, Workload};

fn main() {
    let w = SupportVectorMachine;
    let trained = bench::train(&w);
    let params = w.paper_params();
    // Schedule #2 = p(1) p(6), on its recommended configuration.
    let idx = trained.schedules.len() - 1;
    let machines = trained.machines_for(idx, params.e(), params.f());
    let app = w.build(&params);
    let mut sim = w.sim_params();
    sim.seed = 0x75;
    let engine = Engine::new(&app, ClusterConfig::new(machines, trained.target_spec), sim);
    let report = engine
        .run(
            &trained.schedules[idx].schedule,
            RunOptions {
                collect_traces: true,
                partition_skew: 0.33, // the paper's up-to-2x spread
                ..RunOptions::default()
            },
        )
        .expect("run succeeds");

    // 1. Partition size spread of the big cached dataset (D6).
    let d6 = DatasetId(6);
    let partitions = app.dataset(d6).partitions;
    let sizes: Vec<f64> = (0..partitions)
        .map(|p| cluster_sim::task::skew_factor(d6, p, 0.33) * app.dataset(d6).partition_bytes())
        .collect();
    let max = sizes.iter().cloned().fold(0.0f64, f64::max);
    let min = sizes.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "Partition sizes of D6: min {:.1} MB, max {:.1} MB (ratio {:.2}x; paper: ~2x)",
        min / 1e6,
        max / 1e6,
        max / min
    );

    // 2. Cached-bytes balance per machine, reconstructed from traces.
    let mut per_machine = vec![0.0f64; machines as usize];
    for t in &report.traces {
        // Count the final cache-read wave: last job touching D6.
        if t.steps
            .iter()
            .any(|s| s.dataset == d6 && s.kind == cluster_sim::StepKind::CacheRead)
        {
            per_machine[t.machine as usize] += sizes[t.task as usize % sizes.len()];
        }
    }
    let total: f64 = per_machine.iter().sum();
    if total > 0.0 {
        let rows: Vec<Vec<String>> = per_machine
            .iter()
            .enumerate()
            .map(|(m, b)| {
                vec![
                    format!("m{m}"),
                    format!("{:.1} GB", b / 1e9),
                    format!("{:.1}%", b / total * 100.0),
                ]
            })
            .collect();
        print_table(
            "Cached-read bytes per machine (should be nearly equal)",
            &["machine", "bytes", "share"],
            &rows,
        );
    }

    // 3. Per-iteration misses of the cached datasets (the transient
    //    first-iteration evictions).
    let mut rows = Vec::new();
    for (ji, deltas) in report.per_job_cache.iter().enumerate().take(8) {
        let (mut hits, mut misses) = (0u64, 0u64);
        for (_, h, m) in deltas {
            hits += h;
            misses += m;
        }
        if hits + misses == 0 {
            continue;
        }
        rows.push(vec![ji.to_string(), hits.to_string(), misses.to_string()]);
    }
    print_table(
        "First jobs: cached-dataset hits/misses (paper: 14 -> 3 -> 0 evictions)",
        &["job", "hits", "misses"],
        &rows,
    );

    let d6_stats = &report.cache.per_dataset[&d6];
    println!(
        "\nEnd state: {}/{} partitions of D6 resident; {} evictions over the whole run.",
        d6_stats.resident_partitions, partitions, d6_stats.evictions
    );
}
