//! §6.1 (second half) — hyper-parameters in the execution-time model.
//!
//! "Some hyper-parameters, like the number of clusters in K-MEANS,
//! influence … the execution time of each iteration. Similar to the
//! number of iterations, these hyper-parameters are to be considered when
//! Juggler builds the execution time model."
//!
//! K-Means (the extension workload) is trained with a third model axis
//! bound to the cluster count `k`; the extended family predicts across
//! unseen `k`, while a fixed-`k` model cannot.

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, RunOptions};
use juggler::TimeModel;
use modeling::accuracy_pct;
use workloads::{KMeans, Workload, WorkloadParams};

fn actual(k: u32, e: f64, f: f64, machines: u32, seed: u64) -> f64 {
    let w = KMeans { clusters: k };
    let params = WorkloadParams::auto(e as u64, f as u64, w.paper_params().iterations);
    let app = w.build(&params);
    let mut sim = w.sim_params();
    sim.seed = seed;
    Engine::new(
        &app,
        ClusterConfig::new(machines, cluster_sim::MachineSpec::private_cluster()),
        sim,
    )
    .run(&app.default_schedule().clone(), RunOptions::default())
    .expect("run succeeds")
    .total_time_s
}

fn main() {
    let base = KMeans::default();
    let paper = base.paper_params();
    let machines = 2;

    // Training grid: (e, f) × k ∈ {5, 15, 30}; the hyper-parameter rides
    // in the model's third (iterations) slot.
    let (e_axis, f_axis) = base.training_axes();
    let mut points = Vec::new();
    for &e in &e_axis {
        for &f in &f_axis {
            for &k in &[5u32, 15, 30] {
                points.push((
                    e,
                    f,
                    f64::from(k),
                    actual(k, e, f, machines, 0xAB ^ u64::from(k)),
                ));
            }
        }
    }
    let extended = TimeModel::fit_with_iterations(0, &points).expect("fits");

    // Fixed-k baseline trained only at k = 10.
    let fixed_points: Vec<(f64, f64, f64)> = e_axis
        .iter()
        .flat_map(|&e| {
            f_axis
                .iter()
                .map(move |&f| (e, f, actual(10, e, f, machines, 0xCD ^ (e as u64))))
        })
        .collect();
    let fixed = TimeModel::fit(0, &fixed_points).expect("fits");

    let mut rows = Vec::new();
    for &k in &[5u32, 10, 20, 40, 60] {
        let truth = actual(k, paper.e(), paper.f(), machines, 0xEF ^ u64::from(k));
        let ext_pred = extended.predict_with_iterations(paper.e(), paper.f(), f64::from(k));
        let fixed_pred = fixed.predict(paper.e(), paper.f());
        rows.push(vec![
            k.to_string(),
            bench::fmt_secs(truth),
            bench::fmt_secs(ext_pred),
            format!("{:.0}%", accuracy_pct(ext_pred, truth)),
            bench::fmt_secs(fixed_pred),
            format!("{:.0}%", accuracy_pct(fixed_pred, truth)),
        ]);
    }
    print_table(
        "§6.1: K-Means across the cluster-count hyper-parameter",
        &[
            "k",
            "actual",
            "k-aware model",
            "acc",
            "fixed-k model",
            "acc",
        ],
        &rows,
    );
    println!(
        "\nThe hyper-parameter-extended family tracks unseen k (including 2x \
         extrapolation to k = 60); a model trained at one k cannot."
    );
}
