//! Figure 1 — "Selection of appropriate datasets for caching (LIR)".
//!
//! HiBench's Linear Regression caches nothing, so each of the 10 SGD
//! iterations re-reads the 35.8 GB input. The paper modifies LIR to cache
//! the parsed input dataset (35.9 GB) and observes execution time dropping
//! to 54.8 % and cost to 34.3 % on average across 1–12 machines.
//!
//! This bench reruns exactly that experiment: the default (cache-nothing)
//! schedule vs `p(1)` on every configuration.

use bench::{fmt_secs, print_table};
use cluster_sim::MachineSpec;
use dagflow::{DatasetId, Schedule};
use workloads::{LinearRegression, Workload};

fn main() {
    let w = LinearRegression;
    let params = w.paper_params();
    let spec = MachineSpec::private_cluster();

    let default = Schedule::empty();
    let cached = Schedule::persist_all([DatasetId(1)]);

    let sweep_default = bench::sweep(&w, &params, &default, spec);
    let sweep_cached = bench::sweep(&w, &params, &cached, spec);

    let mut time_ratios = Vec::new();
    let mut cost_ratios = Vec::new();
    let rows: Vec<Vec<String>> = sweep_default
        .iter()
        .zip(&sweep_cached)
        .map(|(d, c)| {
            let tr = c.total_time_s / d.total_time_s;
            let cr = c.cost_machine_minutes() / d.cost_machine_minutes();
            time_ratios.push(tr);
            cost_ratios.push(cr);
            vec![
                d.machines.to_string(),
                fmt_secs(d.total_time_s),
                fmt_secs(c.total_time_s),
                format!("{:.1}", d.cost_machine_minutes()),
                format!("{:.1}", c.cost_machine_minutes()),
                format!("{:.0}%", tr * 100.0),
                format!("{:.0}%", cr * 100.0),
            ]
        })
        .collect();
    print_table(
        "Figure 1: LIR with vs without caching the parsed input (35.9 GB)",
        &[
            "machines",
            "t(default)",
            "t(p(1))",
            "cost(default)",
            "cost(p(1))",
            "time ratio",
            "cost ratio",
        ],
        &rows,
    );

    let avg_t = time_ratios.iter().sum::<f64>() / time_ratios.len() as f64;
    let _ = cost_ratios;
    // At equal machine counts the cost ratio equals the time ratio, so the
    // paper's separate cost number compares best-against-best: the minimal
    // cost achievable with caching vs without.
    let min_cost_default = bench::minimal_cost(&sweep_default);
    let min_cost_cached = bench::minimal_cost(&sweep_cached);
    println!(
        "\nAverage time ratio across configurations: {:.1}% (paper: 54.8%)",
        avg_t * 100.0
    );
    println!(
        "Minimal-cost ratio (best cached vs best default): {:.1}% (paper: 34.3%)",
        min_cost_cached / min_cost_default * 100.0
    );
    bench::save_results(
        "fig01_lir_caching",
        &serde_json::json!({
            "avg_time_ratio": avg_t,
            "min_cost_ratio": min_cost_cached / min_cost_default,
            "paper": {"avg_time_ratio": 0.548, "min_cost_ratio": 0.343},
        }),
    );
}
