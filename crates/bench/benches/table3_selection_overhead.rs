//! Table 3 — "Extra cost and time of related components compared to
//! Juggler: Dataset selection".
//!
//! Aggregates, across all applications and schedules, how much more
//! execution cost and time each baseline's schedule family incurs relative
//! to Juggler's, both measured at their per-schedule optimal cluster
//! configurations. The paper reports +17–33 % cost and +10–49 % time.

use baselines::{DatasetSelector, Hagedorn, Jindal, Lrc, Mrd, Nagel, SelectionMetrics};
use bench::{optimal_config, print_table};
use cluster_sim::{ClusterConfig, MachineSpec};
use dagflow::Schedule;
use instrument::profile_run;
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

fn family_stats(
    w: &dyn workloads::Workload,
    schedules: &[Schedule],
    spec: MachineSpec,
) -> Option<(f64, f64)> {
    if schedules.is_empty() {
        return None;
    }
    let params = w.paper_params();
    let mut cost = 0.0;
    let mut time = 0.0;
    for s in schedules {
        let sweep = bench::sweep(w, &params, s, spec);
        let (_, c, t) = optimal_config(&sweep);
        cost += c;
        time += t;
    }
    let n = schedules.len() as f64;
    Some((cost / n, time / n))
}

fn main() {
    let selectors: Vec<Box<dyn DatasetSelector>> = vec![
        Box::new(Nagel),
        Box::new(Jindal),
        Box::new(Hagedorn),
        Box::new(Lrc),
        Box::new(Mrd),
    ];
    let spec = MachineSpec::private_cluster();

    // Accumulate per-selector relative overheads across applications.
    let mut extra_cost = vec![0.0f64; selectors.len()];
    let mut extra_time = vec![0.0f64; selectors.len()];
    let mut counted = vec![0u32; selectors.len()];

    for w in bench::workloads() {
        let sample = w.sample_params();
        let sample_app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &sample_app,
            &sample_app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("sample run succeeds");
        let view = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
        let sel_metrics = SelectionMetrics {
            et: view.et.clone(),
            size: view.size.clone(),
        };

        let juggler: Vec<Schedule> = detect_hotspots(&sample_app, &view, &HotspotConfig::default())
            .into_iter()
            .map(|rs| rs.schedule.as_ref().clone())
            .collect();
        let Some((jc, jt)) = family_stats(w.as_ref(), &juggler, spec) else {
            continue;
        };

        for (si, sel) in selectors.iter().enumerate() {
            let schedules: Vec<Schedule> = sel
                .schedules(&sample_app, &sel_metrics)
                .into_iter()
                .take(3)
                .collect();
            if let Some((c, t)) = family_stats(w.as_ref(), &schedules, spec) {
                extra_cost[si] += (c / jc - 1.0) * 100.0;
                extra_time[si] += (t / jt - 1.0) * 100.0;
                counted[si] += 1;
            }
        }
    }

    let rows: Vec<Vec<String>> = selectors
        .iter()
        .enumerate()
        .map(|(si, sel)| {
            let n = f64::from(counted[si].max(1));
            vec![
                sel.name().to_owned(),
                format!("{:+.0}%", extra_cost[si] / n),
                format!("{:+.0}%", extra_time[si] / n),
            ]
        })
        .collect();
    print_table(
        "Table 3: extra cost and time vs Juggler (dataset selection)",
        &["approach", "extra cost", "extra time"],
        &rows,
    );
    println!(
        "\nPaper reference: Nagel'13 +29%/+22%, Jindal'18 +32%/+30%, Hagedorn'18 +17%/+10%, \
         LRC +32%/+37%, MRD +33%/+49%."
    );
}
