//! Figure 13 — "Juggler's dataset prediction accuracy".
//!
//! Compares the sizes of the cached datasets of every schedule, as
//! predicted by the parameter-calibration models at the Table 1
//! parameters, against the actual sizes in the actual runs. The paper's
//! worst-case error is 0.91 %.

use bench::{fmt_bytes, print_table};
use modeling::accuracy_pct;

fn main() {
    let mut rows = Vec::new();
    let mut worst_err: f64 = 0.0;

    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let params = w.paper_params();
        let app = w.build(&params);
        for (i, rs) in trained.schedules.iter().enumerate() {
            for d in rs.schedule.persisted() {
                let predicted = trained.sizes.predict_dataset(d, params.e(), params.f());
                let actual = app.dataset(d).bytes;
                let err = (predicted as f64 - actual as f64).abs() / actual as f64 * 100.0;
                worst_err = worst_err.max(err);
                rows.push(vec![
                    w.name().to_owned(),
                    format!("#{}", i + 1),
                    d.to_string(),
                    fmt_bytes(predicted),
                    fmt_bytes(actual),
                    format!("{:.2}%", accuracy_pct(predicted as f64, actual as f64)),
                ]);
            }
        }
    }
    print_table(
        "Figure 13: predicted vs actual cached-dataset sizes",
        &[
            "app",
            "schedule",
            "dataset",
            "predicted",
            "actual",
            "accuracy",
        ],
        &rows,
    );
    println!("\nWorst-case size error: {worst_err:.2}% (paper: 0.91%)");
}
