//! Figure 15 + Table 4 — "Juggler vs related components: Recommended
//! cluster configuration".
//!
//! MemTune, RelM and SystemML size the cluster for every Juggler schedule
//! from the memory footprint and data sizes of an actual run (as the
//! paper's evaluation does). Their recommendations run against Juggler's;
//! Table 4 aggregates extra cost and time. The paper: MemTune +36 % cost
//! −9 % time, RelM +46 %/−46 %, SystemML +9 %/−18 % — every baseline
//! costs more; RelM and SystemML are faster because over-allocation still
//! adds parallelism.

use baselines::{MemTune, RelM, SizingBaseline, SizingInputs, SystemML};
use bench::{print_table, MACHINE_RANGE};

fn main() {
    let baselines: Vec<Box<dyn SizingBaseline>> = vec![
        Box::new(MemTune),
        Box::new(RelM::default()),
        Box::new(SystemML),
    ];
    let max_m = *MACHINE_RANGE.end();

    let mut rows = Vec::new();
    let mut totals = vec![(0.0f64, 0.0f64); baselines.len()]; // (cost%, time%)
    let mut count = 0u32;

    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let params = w.paper_params();
        let app = w.build(&params);
        let spec = trained.target_spec;

        for (i, rs) in trained.schedules.iter().enumerate() {
            let juggler_m = trained.machines_for(i, params.e(), params.f());
            let juggler_run = bench::actual_run(w.as_ref(), &params, &rs.schedule, juggler_m, spec);

            // The "analyzed actual run" the baselines consume.
            let outputs: u64 = app.jobs().iter().map(|j| app.dataset(j.target).bytes).sum();
            let inputs = SizingInputs {
                cached_bytes: rs
                    .schedule
                    .memory_budget(|d| trained.sizes.predict_dataset(d, params.e(), params.f())),
                input_bytes: app.input_bytes(),
                output_bytes: outputs,
                peak_exec_per_machine: juggler_run.cache.peak_exec_bytes
                    / u64::from(juggler_m.max(1)),
            };

            let mut row = vec![
                w.name().to_owned(),
                format!("#{}", i + 1),
                format!("{juggler_m} ({:.0})", juggler_run.cost_machine_minutes()),
            ];
            for (bi, b) in baselines.iter().enumerate() {
                let m = b.machines(&inputs, &spec).clamp(1, max_m);
                let run = bench::actual_run(w.as_ref(), &params, &rs.schedule, m, spec);
                totals[bi].0 +=
                    (run.cost_machine_minutes() / juggler_run.cost_machine_minutes() - 1.0) * 100.0;
                totals[bi].1 += (run.total_time_s / juggler_run.total_time_s - 1.0) * 100.0;
                row.push(format!("{m} ({:.0})", run.cost_machine_minutes()));
            }
            count += 1;
            rows.push(row);
        }
    }
    print_table(
        "Figure 15: recommended machines (cost in machine-min)",
        &["app", "schedule", "Juggler", "MemTune", "RelM", "SystemML"],
        &rows,
    );

    let t4: Vec<Vec<String>> = baselines
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            vec![
                b.name().to_owned(),
                format!("{:+.0}%", totals[bi].0 / f64::from(count)),
                format!("{:+.0}%", totals[bi].1 / f64::from(count)),
            ]
        })
        .collect();
    print_table(
        "Table 4: cost and time vs Juggler (cluster sizing)",
        &["approach", "extra cost", "time delta"],
        &t4,
    );
    println!("\nPaper reference: MemTune +36%/-9%, RelM +46%/-46%, SystemML +9%/-18%.");
}
