//! §6.2 extension — machine types (VMs).
//!
//! Demonstrates the paper's two claims about changing the machine type:
//!
//! 1. **Optimization models transfer as-is**: the recommended machine
//!    count follows Eq. 5/6 with the new type's memory, no new
//!    experiments — verified against sweeps on each type.
//! 2. **Prediction models need a bridge**: reusing the base time model
//!    directly mispredicts on dissimilar types; a CherryPick-style
//!    transfer model fit from 3 probe runs restores accuracy.

use bench::{optimal_config, print_table};
use cluster_sim::{ClusterConfig, Engine, RunOptions};
use juggler::InstanceCatalog;
use modeling::accuracy_pct;
use workloads::{LogisticRegression, Workload, WorkloadParams};

fn main() {
    let w = LogisticRegression;
    let trained = bench::train(&w);
    let params = w.paper_params();
    let catalog = InstanceCatalog::aws_like();

    let run_on = |spec: &cluster_sim::MachineSpec, p: &WorkloadParams, machines: u32, seed: u64| {
        let app = w.build(p);
        let mut sim = w.sim_params();
        sim.seed = seed;
        Engine::new(&app, ClusterConfig::new(machines, *spec), sim)
            .run(
                &trained.schedules[0].schedule,
                RunOptions {
                    collect_traces: false,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .expect("run succeeds")
    };

    // Probe candidate grid for transfer fitting.
    let (e_axis, f_axis) = w.training_axes();
    let mut candidates = Vec::new();
    for &e in &e_axis {
        for &f in &f_axis {
            candidates.push((e, f));
        }
    }

    let mut rows = Vec::new();
    for itype in &catalog.types {
        // 1. Optimization transfer: Eq. 6 with the new type's M.
        let menu = trained.recommend_on(params.e(), params.f(), &itype.spec, None);
        let rec = menu
            .options
            .iter()
            .chain(menu.dominated.iter())
            .find(|o| o.schedule_index == 0)
            .expect("schedule 0 present");
        // Ground truth optimum on this type.
        let sweep: Vec<_> = (1..=12u32)
            .map(|m| run_on(&itype.spec, &params, m, 0x77 ^ u64::from(m)))
            .collect();
        let (opt_m, _, _) = optimal_config(&sweep);

        // 2. Prediction transfer: 3 probe runs on this type.
        let transfer = trained.fit_transfer(&candidates, 3, &itype.spec, |e, f, m| {
            let p = WorkloadParams::auto(e as u64, f as u64, params.iterations);
            run_on(&itype.spec, &p, m, 0xBEEF ^ (e as u64)).total_time_s
        });
        let actual = sweep[(rec.machines - 1) as usize].total_time_s;
        let naive_pred = trained.time_models[0].predict(params.e(), params.f());
        let bridged_pred = transfer.predict(naive_pred);

        rows.push(vec![
            itype.name.clone(),
            format!("{:.0} GB", itype.spec.ram_bytes as f64 / 1e9),
            rec.machines.to_string(),
            opt_m.to_string(),
            format!("{:.0}%", accuracy_pct(naive_pred, actual)),
            format!("{:.0}%", accuracy_pct(bridged_pred, actual)),
        ]);
    }
    print_table(
        "§6.2: LOR schedule #1 across machine types",
        &[
            "type",
            "RAM",
            "rec. machines",
            "optimal",
            "naive acc",
            "transfer acc (3 probes)",
        ],
        &rows,
    );
    println!(
        "\nOptimization models (machine counts) transfer with zero new experiments; \
         prediction needs the 3-probe CherryPick-style bridge on dissimilar types."
    );
}
