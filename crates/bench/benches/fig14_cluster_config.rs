//! Figure 14 — "Juggler's recommendation compared to optimal cluster
//! configuration".
//!
//! For every schedule of every application: Juggler's Eq. 6 recommendation
//! vs the true optimum found by sweeping 1–12 machines. The paper finds
//! the recommendation optimal in 50 % of cases and near-to-optimal
//! otherwise, with an average extra cost of 7.3 %.

use bench::{optimal_config, print_table};

fn main() {
    let mut rows = Vec::new();
    let mut optimal_hits = 0usize;
    let mut total = 0usize;
    let mut extra_cost_pct = Vec::new();

    for (w, trained) in bench::workloads().iter().zip(bench::train_all()) {
        let params = w.paper_params();
        let spec = trained.target_spec;

        for (i, rs) in trained.schedules.iter().enumerate() {
            let recommended = trained.machines_for(i, params.e(), params.f());
            let sweep = bench::sweep(w.as_ref(), &params, &rs.schedule, spec);
            let (opt_m, opt_cost, _) = optimal_config(&sweep);
            let rec_cost = sweep[(recommended - 1) as usize].cost_machine_minutes();
            let extra = (rec_cost / opt_cost - 1.0) * 100.0;
            total += 1;
            if recommended == opt_m {
                optimal_hits += 1;
            }
            extra_cost_pct.push(extra);
            rows.push(vec![
                w.name().to_owned(),
                format!("#{}", i + 1),
                recommended.to_string(),
                opt_m.to_string(),
                format!("{rec_cost:.1}"),
                format!("{opt_cost:.1}"),
                format!("{extra:+.1}%"),
            ]);
        }
    }
    print_table(
        "Figure 14: recommended vs optimal cluster configuration",
        &[
            "app",
            "schedule",
            "recommended",
            "optimal",
            "cost@rec",
            "cost@opt",
            "extra cost",
        ],
        &rows,
    );
    let avg_extra = extra_cost_pct.iter().sum::<f64>() / extra_cost_pct.len() as f64;
    println!(
        "\nOptimal in {optimal_hits}/{total} cases ({:.0}%; paper: 50%), average extra cost {avg_extra:.1}% (paper: 7.3%)",
        optimal_hits as f64 / total as f64 * 100.0
    );
    bench::save_results(
        "fig14_cluster_config",
        &serde_json::json!({
            "optimal_cases": optimal_hits,
            "total_cases": total,
            "avg_extra_cost_pct": avg_extra,
            "paper": {"optimal_fraction": 0.5, "avg_extra_cost_pct": 7.3},
        }),
    );
}
