//! Overhead of the tenancy machinery for a lone application: a batch of
//! paper-scale LOR runs through the plain engine vs the same runs
//! admitted as a single-tenant [`TenantSet`] — the path every
//! `juggler tenants` spec with one entry takes, and the path whose
//! reports must stay byte-identical to the pre-tenancy simulator.
//! Gated budget: < 5 % over the plain engine (the same baseline batch
//! `sim_throughput` tracks).
//!
//! A third batch routes the lone tenant through the *interleaved*
//! scheduler by admitting a weightless placeholder next to it — the
//! slowest honest single-app path (shared pool, per-job share checks).
//! Multi-tenant runs are opt-in, so this row is reported but not gated.
//! Results land in `results/BENCH_tenants_overhead.json`.

use std::sync::Arc;
use std::time::Instant;

use bench::print_table;
use cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions, RunReport, Tenant, TenantSet};
use dagflow::{Application, Schedule};
use workloads::{LogisticRegression, Workload};

const ENGINE_RUNS: usize = 24;
const REPS: usize = 15;

/// Which admission path a batch runs under.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// The plain engine: no tenancy machinery at all.
    Plain,
    /// A single-tenant set: the len-1 fast path.
    SingleTenant,
    /// A lone active tenant plus a weightless placeholder: the real
    /// interleaved scheduler with one runnable application.
    LoneActive,
}

fn fixture() -> (Application, Arc<Schedule>, ClusterConfig) {
    let w = LogisticRegression;
    let app = w.build(&w.paper_params());
    let schedule = Arc::new(app.default_schedule().clone());
    let cluster = ClusterConfig::new(4, MachineSpec::private_cluster());
    (app, schedule, cluster)
}

fn params(seed: u64) -> cluster_sim::SimParams {
    let mut p = LogisticRegression.sim_params();
    p.seed = seed;
    p
}

fn run_one(
    path: Path,
    app: &Application,
    ghost: &Application,
    schedule: &Arc<Schedule>,
    cluster: ClusterConfig,
    seed: u64,
) -> RunReport {
    match path {
        Path::Plain => Engine::new(app, cluster, params(seed))
            .run_shared(schedule, RunOptions::default())
            .expect("run succeeds"),
        Path::SingleTenant => {
            let set = TenantSet {
                cluster,
                tenants: vec![Tenant::new(app, Arc::clone(schedule), params(seed))],
            };
            let mut tr = set.run(RunOptions::default()).expect("run succeeds");
            tr.reports.pop().expect("one report")
        }
        Path::LoneActive => {
            let set = TenantSet {
                cluster,
                tenants: vec![
                    Tenant::new(app, Arc::clone(schedule), params(seed)),
                    Tenant {
                        weight: 0.0,
                        ..Tenant::new(ghost, Arc::clone(schedule), params(seed ^ 1))
                    },
                ],
            };
            let mut tr = set.run(RunOptions::default()).expect("run succeeds");
            tr.reports.swap_remove(0)
        }
    }
}

/// One timed batch of runs down the given path.
fn batch_once(
    path: Path,
    app: &Application,
    ghost: &Application,
    schedule: &Arc<Schedule>,
    cluster: ClusterConfig,
    rep: usize,
) -> f64 {
    let t0 = Instant::now();
    for i in 0..ENGINE_RUNS {
        let seed = 0x7E40 + (rep * ENGINE_RUNS + i) as u64;
        let report = run_one(path, app, ghost, schedule, cluster, seed);
        std::hint::black_box(&report);
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let (app, schedule, cluster) = fixture();
    let ghost = app.clone();

    // Correctness preflight: both tenancy paths must reproduce the plain
    // engine byte-for-byte before their speed means anything.
    let plain = run_one(Path::Plain, &app, &ghost, &schedule, cluster, 0x7E4A7);
    for path in [Path::SingleTenant, Path::LoneActive] {
        let tenant = run_one(path, &app, &ghost, &schedule, cluster, 0x7E4A7);
        assert_eq!(plain.digest(), tenant.digest());
        assert_eq!(plain.total_time_s, tenant.total_time_s);
        assert_eq!(plain.cache, tenant.cache);
    }

    // Best-of-`REPS` for all three paths, *interleaved* so slow drift
    // (thermal, background load) hits every path evenly.
    let (mut best_plain, mut best_single, mut best_lone) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for rep in 0..REPS {
        best_plain = best_plain.min(batch_once(
            Path::Plain,
            &app,
            &ghost,
            &schedule,
            cluster,
            rep,
        ));
        best_single = best_single.min(batch_once(
            Path::SingleTenant,
            &app,
            &ghost,
            &schedule,
            cluster,
            rep,
        ));
        best_lone = best_lone.min(batch_once(
            Path::LoneActive,
            &app,
            &ghost,
            &schedule,
            cluster,
            rep,
        ));
    }
    let pct = |t: f64| {
        if best_plain <= 0.0 {
            0.0
        } else {
            (t - best_plain) / best_plain * 100.0
        }
    };
    let single_pct = pct(best_single);
    let lone_pct = pct(best_lone);

    print_table(
        &format!("Tenancy overhead for a lone application (best of {REPS}, interleaved)"),
        &["path", "batch (s)", "overhead", "gated"],
        &[
            vec![
                format!("plain engine x{ENGINE_RUNS} (LOR paper scale)"),
                format!("{best_plain:.4}"),
                String::from("—"),
                String::from("baseline"),
            ],
            vec![
                String::from("single-tenant set (fast path)"),
                format!("{best_single:.4}"),
                format!("{single_pct:+.2}%"),
                String::from("< 5%"),
            ],
            vec![
                String::from("lone active + weightless ghost"),
                format!("{best_lone:.4}"),
                format!("{lone_pct:+.2}%"),
                String::from("informational"),
            ],
        ],
    );
    let within_budget = single_pct < 5.0;
    println!("\nsingle-tenant overhead within the 5% budget: {within_budget}");

    bench::save_results(
        "BENCH_tenants_overhead",
        &serde_json::json!({
            "workload": "LOR",
            "reps": REPS,
            "engine_runs_per_batch": ENGINE_RUNS,
            "plain_seconds": best_plain,
            "single_tenant": {
                "seconds": best_single,
                "overhead_pct": single_pct,
            },
            "lone_active": {
                "seconds": best_lone,
                "overhead_pct": lone_pct,
            },
            "budget_pct": 5.0,
            "within_budget": within_budget,
        }),
    );
}
