//! Figure 10 — "Juggler vs related components: Dataset selection".
//!
//! For every application, every dataset-selection baseline (LRC, MRD,
//! Hagedorn'18, Nagel'13, Jindal'18) produces its incremental schedule
//! family from the same instrumented sample-run metrics Juggler's hotspot
//! detection uses. Each schedule is then run on all configurations and
//! judged by its minimal cost — "we select the optimal cluster
//! configuration for each schedule … by running it on all cluster
//! configurations and selecting the one with minimal execution cost".

use baselines::{DatasetSelector, Hagedorn, Jindal, Lrc, Mrd, Nagel, SelectionMetrics};
use bench::{minimal_cost, print_table};
use cluster_sim::{ClusterConfig, MachineSpec};
use instrument::profile_run;
use juggler::{detect_hotspots, DatasetMetricsView, HotspotConfig};

fn main() {
    let selectors: Vec<Box<dyn DatasetSelector>> = vec![
        Box::new(Nagel),
        Box::new(Jindal),
        Box::new(Hagedorn),
        Box::new(Lrc),
        Box::new(Mrd),
    ];

    for w in bench::workloads() {
        let sample = w.sample_params();
        let sample_app = w.build(&sample);
        let cluster = ClusterConfig::new(1, MachineSpec::calibration_node());
        let out = profile_run(
            &sample_app,
            &sample_app.default_schedule().clone(),
            cluster,
            w.sim_params(),
        )
        .expect("sample run succeeds");
        let view = DatasetMetricsView::from_metrics(&out.metrics, sample_app.dataset_count());
        let params = w.paper_params();
        let spec = MachineSpec::private_cluster();

        let mut rows = Vec::new();
        // Juggler's schedules.
        let juggler_schedules = detect_hotspots(&sample_app, &view, &HotspotConfig::default());
        for (i, rs) in juggler_schedules.iter().enumerate() {
            let sweep = bench::sweep(w.as_ref(), &params, &rs.schedule, spec);
            rows.push(vec![
                "Juggler".to_owned(),
                format!("#{}", i + 1),
                rs.schedule.notation(),
                format!("{:.1}", minimal_cost(&sweep)),
            ]);
        }
        // Baselines (capped at 3 schedules each, like the figure).
        let sel_metrics = SelectionMetrics {
            et: view.et.clone(),
            size: view.size.clone(),
        };
        for sel in &selectors {
            let schedules = sel.schedules(&sample_app, &sel_metrics);
            for (i, s) in schedules.iter().take(3).enumerate() {
                let sweep = bench::sweep(w.as_ref(), &params, s, spec);
                rows.push(vec![
                    sel.name().to_owned(),
                    format!("#{}", i + 1),
                    s.notation(),
                    format!("{:.1}", minimal_cost(&sweep)),
                ]);
            }
        }
        print_table(
            &format!(
                "Figure 10: {} dataset selection (minimal cost, machine-min)",
                w.name()
            ),
            &["approach", "schedule", "ops", "min cost"],
            &rows,
        );
    }
}
