//! Shared harness utilities for the experiment benches.
//!
//! Every paper table and figure has a `[[bench]]` target (with
//! `harness = false`) that regenerates its rows/series from the simulator;
//! this crate holds the pieces they share: paper-scale actual runs,
//! 1–12-machine sweeps, optimal-configuration search, and plain-text table
//! rendering.

use cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions, RunReport};
use dagflow::Schedule;
use juggler::pipeline::{OfflineTraining, TrainedJuggler, TrainingConfig};
use workloads::{Workload, WorkloadParams};

/// The machine-count range every evaluation sweep uses (§7.1: "we run
/// every schedule on 12 different configurations (1–12 machines)").
pub const MACHINE_RANGE: std::ops::RangeInclusive<u32> = 1..=12;

/// Deterministic seed base for actual runs (offset per machine count so
/// different configurations see different noise, like different days on a
/// real cluster).
pub const RUN_SEED: u64 = 0xAC7A;

/// One actual run of a workload at given parameters.
#[must_use]
pub fn actual_run(
    w: &dyn Workload,
    params: &WorkloadParams,
    schedule: &Schedule,
    machines: u32,
    spec: MachineSpec,
) -> RunReport {
    let app = w.build(params);
    let mut sim = w.sim_params();
    sim.seed = RUN_SEED ^ (u64::from(machines) << 8);
    let engine = Engine::new(&app, ClusterConfig::new(machines, spec), sim);
    engine
        .run(
            schedule,
            RunOptions {
                collect_traces: false,
                partition_skew: 0.15,
                ..RunOptions::default()
            },
        )
        .expect("schedule validated upstream")
}

/// Runs a schedule on every configuration of [`MACHINE_RANGE`] on the
/// shared scoped worker pool (runs are independent and seeded per machine
/// count, so the parallel sweep is bit-identical to the sequential one;
/// `JUGGLER_THREADS` caps the pool).
#[must_use]
pub fn sweep(
    w: &dyn Workload,
    params: &WorkloadParams,
    schedule: &Schedule,
    spec: MachineSpec,
) -> Vec<RunReport> {
    let app = w.build(params);
    let sim_base = w.sim_params();
    // One prep and one schedule clone for the whole sweep: the engine
    // derives both from the app alone, so the 12 configurations differ
    // only in their cluster (which `with_prep` takes per engine).
    let prep = std::sync::Arc::new(cluster_sim::EnginePrep::new(&app));
    let shared = std::sync::Arc::new(schedule.clone());
    let machines: Vec<u32> = MACHINE_RANGE.collect();
    juggler::parallel::run_indexed(machines.len(), 0, |i| {
        let m = machines[i];
        let mut sim = sim_base.clone();
        sim.seed = RUN_SEED ^ (u64::from(m) << 8);
        let engine = Engine::with_prep(
            &app,
            ClusterConfig::new(m, spec),
            sim,
            std::sync::Arc::clone(&prep),
        );
        engine
            .run_shared(
                &shared,
                RunOptions {
                    collect_traces: false,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .expect("schedule validated upstream")
    })
}

/// The configuration with minimal cost in a sweep: `(machines, cost
/// machine-minutes, time seconds)`.
#[must_use]
pub fn optimal_config(sweep: &[RunReport]) -> (u32, f64, f64) {
    sweep
        .iter()
        .map(|r| (r.machines, r.cost_machine_minutes(), r.total_time_s))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("sweep non-empty")
}

/// Minimal cost over a sweep, machine-minutes.
#[must_use]
pub fn minimal_cost(sweep: &[RunReport]) -> f64 {
    optimal_config(sweep).1
}

/// Trains Juggler for a workload with the default (paper) configuration.
#[must_use]
pub fn train(w: &dyn Workload) -> TrainedJuggler {
    OfflineTraining::run(w, &TrainingConfig::default()).expect("training succeeds")
}

/// Trains Juggler for every evaluated workload, whole workloads fanned
/// across the worker pool (each training itself sequential so the pool is
/// not oversubscribed). Returns artifacts in [`workloads`] order —
/// bit-identical to training them one by one.
#[must_use]
pub fn train_all() -> Vec<TrainedJuggler> {
    let ws = workloads();
    juggler::parallel::run_indexed(ws.len(), 0, |i| {
        let config = TrainingConfig {
            threads: 1,
            ..TrainingConfig::default()
        };
        OfflineTraining::run(ws[i].as_ref(), &config).expect("training succeeds")
    })
}

/// All five evaluated workloads.
#[must_use]
pub fn workloads() -> Vec<Box<dyn Workload>> {
    workloads::all_workloads()
}

/// Renders an aligned plain-text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| (*s).to_owned()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The workspace-level `results/` directory every bench writes its
/// `BENCH_*.json` artifact to. `juggler perf-report` gates the same
/// directory against `results/baselines/`, so emission and gating agree
/// on the location by construction.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

/// Persists a bench's headline numbers as JSON under [`results_dir`], so
/// runs are diffable across calibration changes and gateable by
/// `juggler perf-report`. Failures to write are reported but non-fatal —
/// benches must not die on a read-only checkout.
pub fn save_results(bench_name: &str, value: &serde_json::Value) {
    let dir = results_dir();
    let write = || -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{bench_name}.json"));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serializable"),
        )?;
        Ok(path)
    };
    match write() {
        Ok(path) => println!("\n[results saved to {}]", path.display()),
        Err(e) => eprintln!("\n[could not save results: {e}]"),
    }
}

/// Formats seconds compactly (delegates to the shared [`obs`] helper so
/// every human-facing duration in the workspace uses the same units).
#[must_use]
pub fn fmt_secs(s: f64) -> String {
    obs::fmt_duration_s(s)
}

/// Formats bytes compactly (delegates to the shared [`obs`] helper).
#[must_use]
pub fn fmt_bytes(b: u64) -> String {
    obs::fmt_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_helpers() {
        assert_eq!(fmt_secs(30.0), "30 s");
        assert_eq!(fmt_secs(150.0), "2.5 min");
        assert_eq!(fmt_secs(7200.0), "2 h");
        assert_eq!(fmt_bytes(1_500), "1.5 kB");
        assert_eq!(fmt_bytes(35_800_000_000), "35.8 GB");
    }

    #[test]
    fn optimal_config_picks_min_cost() {
        let w = workloads::Pca;
        let p = WorkloadParams::auto(1_000, 500, 2);
        let app_schedule = Schedule::empty();
        let runs: Vec<RunReport> = (1..=3)
            .map(|m| actual_run(&w, &p, &app_schedule, m, MachineSpec::private_cluster()))
            .collect();
        let (m, cost, _) = optimal_config(&runs);
        for r in &runs {
            assert!(r.cost_machine_minutes() >= cost - 1e-9);
        }
        assert!(MACHINE_RANGE.contains(&m));
    }
}
