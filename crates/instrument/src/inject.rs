//! Plan rewriting: injecting profiling operators (paper §4, Figure 6).

use dagflow::{
    Application, ComputeCost, Dataset, DatasetId, Job, NarrowKind, OpKind, Schedule, ScheduleOp,
};

/// Cost of one profiling operator per task — the "lightweight
/// instrumentation" overhead. Defaults are sub-millisecond per partition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingOverhead {
    /// Fixed seconds per task.
    pub fixed_s: f64,
    /// Seconds per byte of the profiled partition (the pass-through copy).
    pub per_byte_s: f64,
}

impl Default for ProfilingOverhead {
    fn default() -> Self {
        ProfilingOverhead {
            fixed_s: 0.000_5,
            per_byte_s: 2.0e-11,
        }
    }
}

/// An instrumented application plus the id mappings back to the original
/// plan.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The rewritten plan (copies interleaved with profiling shadows).
    pub app: Application,
    /// For each instrumented dataset id: the original dataset it is a copy
    /// of (`None` for profiling shadows).
    pub copy_of: Vec<Option<DatasetId>>,
    /// For each instrumented dataset id: the original dataset it profiles
    /// (`None` for plain copies).
    pub profiles: Vec<Option<DatasetId>>,
    /// For each original dataset id: its profiling shadow in the
    /// instrumented plan.
    pub shadow: Vec<DatasetId>,
}

impl Instrumented {
    /// Maps a schedule over original datasets onto the instrumented plan.
    /// Persisting a dataset persists its profiling shadow — the replica the
    /// rest of the DAG depends on, exactly as in Spark_i where downstream
    /// dependencies point at the instrumentation dataset.
    #[must_use]
    pub fn map_schedule(&self, schedule: &Schedule) -> Schedule {
        Schedule::from_ops(
            schedule
                .ops()
                .iter()
                .map(|op| match *op {
                    ScheduleOp::Persist(d) => ScheduleOp::Persist(self.shadow[d.index()]),
                    ScheduleOp::Unpersist(d) => ScheduleOp::Unpersist(self.shadow[d.index()]),
                })
                .collect(),
        )
    }
}

/// Rewrites `app` so that every dataset is followed by a profiling
/// transformation producing an instrumentation replica, with children, job
/// targets and the default schedule rewired to the replicas.
///
/// # Panics
/// Panics only if the original application violates its own invariants
/// (impossible for validated applications).
#[must_use]
pub fn inject(app: &Application, overhead: ProfilingOverhead) -> Instrumented {
    let n = app.dataset_count();
    let mut datasets: Vec<Dataset> = Vec::with_capacity(n * 2);
    let mut copy_of: Vec<Option<DatasetId>> = Vec::with_capacity(n * 2);
    let mut profiles: Vec<Option<DatasetId>> = Vec::with_capacity(n * 2);
    let mut shadow: Vec<DatasetId> = Vec::with_capacity(n);

    for d in app.datasets() {
        // The copy of the original dataset, reading from the shadows of its
        // parents (Figure 6's dependency redirection).
        let copy_id = DatasetId(datasets.len() as u32);
        datasets.push(Dataset {
            id: copy_id,
            name: d.name.clone(),
            op: d.op,
            parents: d.parents.iter().map(|p| shadow[p.index()]).collect(),
            records: d.records,
            bytes: d.bytes,
            partitions: d.partitions,
            compute: d.compute,
        });
        copy_of.push(Some(d.id));
        profiles.push(None);

        // Its profiling shadow: a pass-through replica.
        let shadow_id = DatasetId(datasets.len() as u32);
        datasets.push(Dataset {
            id: shadow_id,
            name: format!("{}#profile", d.name),
            op: OpKind::Narrow(NarrowKind::Profile),
            parents: vec![copy_id],
            records: d.records,
            bytes: d.bytes,
            partitions: d.partitions,
            compute: ComputeCost::new(overhead.fixed_s, 0.0, overhead.per_byte_s),
        });
        copy_of.push(None);
        profiles.push(Some(d.id));
        shadow.push(shadow_id);
    }

    let jobs: Vec<Job> = app
        .jobs()
        .iter()
        .map(|j| Job {
            action: j.action.clone(),
            target: shadow[j.target.index()],
        })
        .collect();

    let partial = Instrumented {
        app: Application::new(
            format!("{}+spark_i", app.name()),
            datasets,
            jobs,
            Schedule::empty(),
        )
        .expect("instrumented plan preserves invariants"),
        copy_of,
        profiles,
        shadow,
    };
    let mapped_default = partial.map_schedule(app.default_schedule());
    let mut instrumented = partial;
    instrumented
        .app
        .set_default_schedule(mapped_default)
        .expect("mapped schedule refers to shadows that exist");
    instrumented
}

#[cfg(test)]
mod tests {
    use super::*;
    use dagflow::{AppBuilder, LineageAnalysis, SourceFormat, StagePlan, WideKind};

    fn sample() -> Application {
        let mut b = AppBuilder::new("s");
        let src = b.source("in", SourceFormat::DistributedFs, 100, 1_000, 4);
        let m = b.narrow(
            "m",
            NarrowKind::Map,
            &[src],
            100,
            900,
            ComputeCost::new(0.01, 0.0, 0.0),
        );
        let agg = b.wide_with_partitions(
            "agg",
            WideKind::TreeAggregate,
            &[m],
            1,
            64,
            1,
            ComputeCost::new(0.005, 0.0, 0.0),
        );
        b.job("collect", agg);
        b.job("collect2", agg);
        b.default_schedule(Schedule::persist_all([m]));
        b.build().unwrap()
    }

    #[test]
    fn doubles_dataset_count_and_rewires() {
        let app = sample();
        let instr = inject(&app, ProfilingOverhead::default());
        assert_eq!(instr.app.dataset_count(), 6);
        // Copy of `m` depends on the shadow of `src`.
        let m_copy = DatasetId(2);
        assert_eq!(instr.app.dataset(m_copy).parents, vec![DatasetId(1)]);
        assert!(instr.app.dataset(DatasetId(1)).op.is_profile());
        // Jobs target the final shadow.
        assert_eq!(instr.app.jobs()[0].target, DatasetId(5));
        assert!(instr.app.validate().is_ok());
    }

    #[test]
    fn mappings_are_consistent() {
        let app = sample();
        let instr = inject(&app, ProfilingOverhead::default());
        for (orig_idx, &sh) in instr.shadow.iter().enumerate() {
            assert_eq!(instr.profiles[sh.index()], Some(DatasetId(orig_idx as u32)));
            let copy = instr.app.dataset(sh).parents[0];
            assert_eq!(
                instr.copy_of[copy.index()],
                Some(DatasetId(orig_idx as u32))
            );
        }
    }

    #[test]
    fn schedule_maps_to_shadows() {
        let app = sample();
        let instr = inject(&app, ProfilingOverhead::default());
        assert_eq!(
            instr.app.default_schedule().persisted(),
            vec![instr.shadow[1]],
            "persist(m) becomes persist(shadow-of-m)"
        );
    }

    /// Profiling must not change the lineage structure: computation counts
    /// of copies equal those of the originals.
    #[test]
    fn computation_counts_preserved() {
        let app = sample();
        let la = LineageAnalysis::new(&app);
        let instr = inject(&app, ProfilingOverhead::default());
        let la_i = LineageAnalysis::new(&instr.app);
        for d in app.datasets() {
            let copy = instr.app.dataset(instr.shadow[d.id.index()]).parents[0];
            assert_eq!(
                la.computation_counts()[d.id.index()],
                la_i.computation_counts()[copy.index()],
                "count mismatch for {}",
                d.name
            );
        }
    }

    /// Profiling shadows are narrow, so stage structure is preserved
    /// (same number of stages per job).
    #[test]
    fn stage_structure_preserved() {
        let app = sample();
        let instr = inject(&app, ProfilingOverhead::default());
        for ji in 0..app.jobs().len() {
            let orig = StagePlan::build(&app, dagflow::JobId(ji as u32));
            let inst = StagePlan::build(&instr.app, dagflow::JobId(ji as u32));
            assert_eq!(orig.stages.len(), inst.stages.len());
        }
    }
}
