//! The central profiling database (paper §4): when a task finishes, its
//! low-level runtime data is sent here; application/job/stage/task records
//! follow when the application ends.

use std::collections::HashMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use cluster_sim::{RunReport, StepKind, TaskTrace};
use dagflow::{DatasetId, JobId, StageId};

use crate::inject::Instrumented;

/// One task's bookkeeping row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Job the task belongs to.
    pub job: JobId,
    /// Stage within the job.
    pub stage: StageId,
    /// Task index within the stage.
    pub task: u32,
    /// Task start timestamp (seconds).
    pub start: f64,
    /// Task finish timestamp (seconds).
    pub finish: f64,
}

/// One stage's bookkeeping row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageRecord {
    /// Job the stage belongs to.
    pub job: JobId,
    /// Stage id within the job.
    pub stage: StageId,
    /// Number of tasks the stage ran.
    pub n_tasks: u32,
}

/// What a profiling operator observed about one *original* transformation
/// in one task: the ENT interval (per the three cases of §3.3) and the
/// produced partition size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransformationObservation {
    /// Original dataset the transformation produces.
    pub dataset: DatasetId,
    /// Containing task.
    pub job: JobId,
    /// Containing stage.
    pub stage: StageId,
    /// Task index.
    pub task: u32,
    /// ENT start timestamp.
    pub start: f64,
    /// ENT finish timestamp.
    pub finish: f64,
    /// Partition bytes recorded by the following profiling operator
    /// (0 for Shuffle-Write halves, whose size is the written shuffle
    /// data and not a dataset partition).
    pub partition_bytes: u64,
    /// Which half of the transformation this is: plain narrow / Shuffle
    /// Read (`false`) or Shuffle Write (`true`).
    pub is_shuffle_write: bool,
    /// Whether the interval was a cache read rather than a computation
    /// (excluded from execution-time estimates, used for size estimates).
    pub is_cache_read: bool,
}

/// The profiling database. Interior mutability with a [`Mutex`] mirrors the
/// central-collector role it plays (tasks report concurrently in Spark_i);
/// the simulator reports one run at a time, but the harness profiles many
/// applications in parallel into one database.
#[derive(Debug, Default)]
pub struct ProfilingDatabase {
    inner: Mutex<DbInner>,
}

#[derive(Debug, Default)]
struct DbInner {
    tasks: Vec<TaskRecord>,
    stages: HashMap<(JobId, StageId), StageRecord>,
    observations: Vec<TransformationObservation>,
}

impl ProfilingDatabase {
    /// Empty database.
    #[must_use]
    pub fn new() -> Self {
        ProfilingDatabase::default()
    }

    /// Ingests an instrumented run: walks every task trace, splits it at
    /// profiling-operator boundaries, and stores one observation per
    /// original transformation — using only profile-visible timestamps.
    pub fn ingest(&self, instr: &Instrumented, report: &RunReport) {
        let mut inner = self.inner.lock();
        for trace in &report.traces {
            inner.tasks.push(TaskRecord {
                job: trace.job,
                stage: trace.stage,
                task: trace.task,
                start: trace.start,
                finish: trace.finish,
            });
            let rec = inner
                .stages
                .entry((trace.job, trace.stage))
                .or_insert(StageRecord {
                    job: trace.job,
                    stage: trace.stage,
                    n_tasks: 0,
                });
            rec.n_tasks = rec.n_tasks.max(trace.task + 1);
            Self::observe_task(instr, trace, &mut inner.observations);
        }
    }

    /// Splits one task at profile boundaries (the §3.3 ENT cases).
    fn observe_task(
        instr: &Instrumented,
        trace: &TaskTrace,
        out: &mut Vec<TransformationObservation>,
    ) {
        // `boundary` is the last profile-visible timestamp: task start, or
        // the finish of the most recent profiling operator.
        let mut boundary = trace.start;
        for step in &trace.steps {
            let did = step.dataset;
            if let Some(original) = instr.profiles.get(did.index()).copied().flatten() {
                if step.kind == StepKind::CacheRead {
                    // The cached replica was read; the profile still "sees"
                    // its size but there was no computation.
                    out.push(TransformationObservation {
                        dataset: original,
                        job: trace.job,
                        stage: trace.stage,
                        task: trace.task,
                        start: boundary,
                        finish: step.finish,
                        partition_bytes: step.out_bytes,
                        is_shuffle_write: false,
                        is_cache_read: true,
                    });
                    boundary = step.finish;
                    continue;
                }
                // A profiling operator ran: everything since `boundary` up
                // to ITS OWN start is the preceding transformation's ENT.
                // (cases 1 and 3 of §3.3: first-in-task intervals start at
                // task start, middle intervals at the previous profile's
                // finish.)
                out.push(TransformationObservation {
                    dataset: original,
                    job: trace.job,
                    stage: trace.stage,
                    task: trace.task,
                    start: boundary,
                    finish: step.start,
                    partition_bytes: step.out_bytes,
                    is_shuffle_write: false,
                    is_cache_read: false,
                });
                boundary = step.finish;
            } else if step.kind == StepKind::ShuffleWrite {
                // Case 2: last transformation in the task — ENT runs to the
                // task's finish. The wide dataset id in the instrumented
                // plan is a copy; map back to the original.
                let original = instr.copy_of.get(did.index()).copied().flatten();
                if let Some(original) = original {
                    out.push(TransformationObservation {
                        dataset: original,
                        job: trace.job,
                        stage: trace.stage,
                        task: trace.task,
                        start: boundary,
                        finish: trace.finish,
                        partition_bytes: 0,
                        is_shuffle_write: true,
                        is_cache_read: false,
                    });
                }
            }
            // Plain copy steps are invisible: their time is absorbed into
            // the interval ending at the next profile — exactly the
            // information a real profiling operator has.
        }
    }

    /// All task records.
    #[must_use]
    pub fn tasks(&self) -> Vec<TaskRecord> {
        self.inner.lock().tasks.clone()
    }

    /// All stage records.
    #[must_use]
    pub fn stages(&self) -> Vec<StageRecord> {
        self.inner.lock().stages.values().copied().collect()
    }

    /// All transformation observations.
    #[must_use]
    pub fn observations(&self) -> Vec<TransformationObservation> {
        self.inner.lock().observations.clone()
    }

    /// Number of observations (cheap, for tests).
    #[must_use]
    pub fn observation_count(&self) -> usize {
        self.inner.lock().observations.len()
    }
}
