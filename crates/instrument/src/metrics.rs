//! Reconstructing dataset metrics from profiling observations — the
//! operator-level execution-time model of §3.3 plus partition-size
//! aggregation (§3.2).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use dagflow::{Application, DatasetId, JobId, StageId};

use crate::db::ProfilingDatabase;

/// Metrics of one (original) dataset, as Juggler's hotspot detection
/// consumes them. The computation count `n` is *not* here — it comes from
/// the merged-DAG analysis (`dagflow::LineageAnalysis`), not from
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetMetrics {
    /// The dataset (original plan id).
    pub dataset: DatasetId,
    /// Measured size: sum of observed partition sizes (§3.2).
    pub size_bytes: u64,
    /// Measured computation time `ET_T` (§3.3): wave-weighted mean task
    /// ENT, with wide transformations as Shuffle Write + Shuffle Read
    /// (Eq. 3).
    pub et_seconds: f64,
    /// Number of (non-cache-read) observations supporting `et_seconds`.
    pub observations: u32,
}

/// Derives per-dataset metrics from a profiling database.
///
/// `total_cores` is the number of parallel task slots of the cluster the
/// instrumented sample run used (`machines × cores`) — the denominator of
/// the `N_waves = ⌈tasks / cores⌉` term of Eq. 2.
#[must_use]
pub fn derive_metrics(
    db: &ProfilingDatabase,
    app: &Application,
    total_cores: u32,
) -> Vec<DatasetMetrics> {
    let stage_tasks: HashMap<(JobId, StageId), u32> = db
        .stages()
        .into_iter()
        .map(|s| ((s.job, s.stage), s.n_tasks))
        .collect();
    let waves = |job: JobId, stage: StageId| -> f64 {
        let n = stage_tasks.get(&(job, stage)).copied().unwrap_or(1).max(1);
        f64::from(n.div_ceil(total_cores.max(1)))
    };

    // Group ENT intervals per (dataset, half, job, stage).
    #[derive(Default)]
    struct Acc {
        total: f64,
        count: u32,
    }
    let mut groups: HashMap<(DatasetId, bool, JobId, StageId), Acc> = HashMap::new();
    // Partition sizes per dataset: partition index → bytes (last write wins).
    let mut sizes: HashMap<DatasetId, HashMap<u32, u64>> = HashMap::new();

    for obs in db.observations() {
        if !obs.is_shuffle_write {
            sizes
                .entry(obs.dataset)
                .or_default()
                .insert(obs.task, obs.partition_bytes);
        }
        if obs.is_cache_read {
            continue;
        }
        let acc = groups
            .entry((obs.dataset, obs.is_shuffle_write, obs.job, obs.stage))
            .or_default();
        acc.total += (obs.finish - obs.start).max(0.0);
        acc.count += 1;
    }

    // Per dataset and half: average over (job, stage) groups of
    // (mean ENT × waves) — Eq. 2; then sum halves — Eq. 3.
    let mut half_et: HashMap<(DatasetId, bool), (f64, u32)> = HashMap::new();
    for ((dataset, is_write, job, stage), acc) in &groups {
        let stage_et = acc.total / f64::from(acc.count) * waves(*job, *stage);
        let slot = half_et.entry((*dataset, *is_write)).or_insert((0.0, 0));
        slot.0 += stage_et;
        slot.1 += 1;
    }

    let mut out = Vec::new();
    for d in app.datasets() {
        let read = half_et.get(&(d.id, false));
        let write = half_et.get(&(d.id, true));
        if read.is_none() && write.is_none() && !sizes.contains_key(&d.id) {
            continue; // never touched in the sample run
        }
        let mut et = 0.0;
        let mut obs_count = 0;
        if let Some(&(total, n)) = read {
            et += total / f64::from(n.max(1));
            obs_count += n;
        }
        if let Some(&(total, n)) = write {
            et += total / f64::from(n.max(1));
            obs_count += n;
        }
        let size_bytes = sizes
            .get(&d.id)
            .map(|parts| parts.values().sum())
            .unwrap_or(0);
        out.push(DatasetMetrics {
            dataset: d.id,
            size_bytes,
            et_seconds: et,
            observations: obs_count,
        });
    }
    out
}

/// Convenience: metrics as a dense lookup (`None` where unobserved).
#[must_use]
pub fn metrics_by_dataset(
    metrics: &[DatasetMetrics],
    dataset_count: usize,
) -> Vec<Option<DatasetMetrics>> {
    let mut v = vec![None; dataset_count];
    for m in metrics {
        v[m.dataset.index()] = Some(*m);
    }
    v
}
