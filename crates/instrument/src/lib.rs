#![warn(missing_docs)]
//! # instrument — the Spark_i reproduction (paper §4)
//!
//! Juggler needs low-level runtime data Spark does not expose: the start
//! and end timestamps of *each transformation inside a task* and the size
//! of each produced partition. The paper modifies Spark so that a
//! pass-through `mapPartitionsWithIndex` profiling transformation is
//! injected between every consecutive pair of transformations; each
//! profiling operator records timestamps and partition sizes into
//! `TaskContext`, and the data lands in a central profiling database when
//! tasks finish.
//!
//! This crate reproduces that pipeline against the simulator:
//!
//! * [`inject`] rewrites an application plan, giving every dataset a
//!   profiling shadow and rewiring children (and job targets, and persist
//!   directives) to the shadows — exactly the dependency surgery of the
//!   paper's Figure 6;
//! * [`ProfilingDatabase`] collects the per-task records of an
//!   instrumented run;
//! * [`derive_metrics`] reconstructs per-transformation execution times
//!   with the §3.3 model (the three ENT cases, wave-weighted averaging of
//!   Eq. 2, and the Shuffle-Write + Shuffle-Read split of Eq. 3) and
//!   per-dataset sizes — using *only* timestamps a profiling operator
//!   could observe, never the simulator's ground truth.

pub mod db;
pub mod inject;
pub mod metrics;
pub mod runner;

pub use db::{ProfilingDatabase, StageRecord, TaskRecord, TransformationObservation};
pub use inject::{inject, Instrumented, ProfilingOverhead};
pub use metrics::{derive_metrics, DatasetMetrics};
pub use runner::{profile_run, ProfileRunOutput};
