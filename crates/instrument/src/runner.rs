//! One-call profiling runs: inject, execute on the simulator with traces,
//! ingest into a database, and derive metrics.

use cluster_sim::{ClusterConfig, Engine, RunOptions, RunReport, SimParams};
use dagflow::{Application, DagError, Schedule};

use crate::db::ProfilingDatabase;
use crate::inject::{inject, Instrumented, ProfilingOverhead};
use crate::metrics::{derive_metrics, DatasetMetrics};

/// Everything a profiling run produces.
#[derive(Debug)]
pub struct ProfileRunOutput {
    /// The instrumented plan and id mappings.
    pub instrumented: Instrumented,
    /// The simulator report of the instrumented run.
    pub report: RunReport,
    /// Per-original-dataset metrics (§3.2/§3.3).
    pub metrics: Vec<DatasetMetrics>,
}

/// Runs `app` under Spark_i on the given cluster and returns dataset
/// metrics. `schedule` is expressed over the *original* plan (pass the
/// app's default schedule for a faithful sample run).
pub fn profile_run(
    app: &Application,
    schedule: &Schedule,
    cluster: ClusterConfig,
    params: SimParams,
) -> Result<ProfileRunOutput, DagError> {
    let instrumented = inject(app, ProfilingOverhead::default());
    let mapped = instrumented.map_schedule(schedule);
    let engine = Engine::new(&instrumented.app, cluster, params);
    let report = engine.run(
        &mapped,
        RunOptions {
            collect_traces: true,
            ..RunOptions::default()
        },
    )?;
    let db = ProfilingDatabase::new();
    db.ingest(&instrumented, &report);
    let metrics = derive_metrics(&db, app, cluster.total_cores());
    Ok(ProfileRunOutput {
        instrumented,
        report,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster_sim::{MachineSpec, NoiseParams};
    use dagflow::{AppBuilder, ComputeCost, DatasetId, NarrowKind, SourceFormat, WideKind};

    /// input → parsed → k treeAggregate jobs; parse compute ~1.17 s per
    /// task, aggregate combine ~0.11 s per map task.
    fn iterative_app(iterations: usize) -> Application {
        let mut b = AppBuilder::new("iterprof");
        let src = b.source("in", SourceFormat::DistributedFs, 8_000, 1_120_000_000, 8);
        let parsed = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[src],
            8_000,
            800_000_000,
            ComputeCost::new(0.05, 1e-5, 4e-9),
        );
        for i in 0..iterations {
            let g = b.wide_with_partitions(
                format!("grad[{i}]"),
                WideKind::TreeAggregate,
                &[parsed],
                8,
                1024,
                1,
                ComputeCost::new(0.01, 0.0, 1e-9),
            );
            b.job("aggregate", g);
        }
        b.build().unwrap()
    }

    fn quiet() -> SimParams {
        SimParams {
            noise: NoiseParams::NONE,
            ..SimParams::default()
        }
    }

    #[test]
    fn measures_sizes_accurately() {
        let app = iterative_app(3);
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let out = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        let parsed = out
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(1))
            .expect("parsed was observed");
        let truth = 800_000_000.0;
        let err = (parsed.size_bytes as f64 - truth).abs() / truth;
        assert!(err < 0.01, "size {} vs {truth}", parsed.size_bytes);
        let src = out
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(0))
            .unwrap();
        assert!((src.size_bytes as f64 - 1_120_000_000.0).abs() / 1_120_000_000.0 < 0.01);
    }

    #[test]
    fn measures_narrow_transformation_time() {
        let app = iterative_app(2);
        // 1 machine × 4 cores, 8 tasks ⇒ 2 waves.
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let out = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        let parsed = out
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(1))
            .unwrap();
        // Per-task ENT for `parsed` is its compute time: 0.05 + 1e-5·1000 +
        // 4e-9·140e6 = 0.62 s (plus the profiling overhead of its own
        // profile, ~0.0165 s, absorbed into the *source's* interval? No:
        // the source's profile ends the source interval; the parsed
        // interval runs from that profile's finish to parsed's profile
        // start, i.e. exactly the parsed compute). With 2 waves: ~1.24 s.
        let expect = (0.05 + 1e-5 * 1000.0 + 4e-9 * 140_000_000.0) * 2.0;
        let err = (parsed.et_seconds - expect).abs() / expect;
        assert!(err < 0.05, "ET {} vs {expect}", parsed.et_seconds);
    }

    #[test]
    fn source_read_time_includes_io() {
        let app = iterative_app(2);
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let out = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        let src = out
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(0))
            .unwrap();
        // 140 MB at 80 MB/s = 1.75 s per task, 2 waves ⇒ ~3.5 s.
        assert!(
            (src.et_seconds - 3.5).abs() / 3.5 < 0.05,
            "ET {}",
            src.et_seconds
        );
    }

    #[test]
    fn wide_transformation_sums_write_and_read_halves() {
        let app = iterative_app(2);
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let out = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        let grad = out
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(2))
            .unwrap();
        // Write half: combine over 100 MB parsed partitions ≈ 0.11 s ×
        // 2 waves; read half: tiny fetch+merge, 1 task, 1 wave.
        assert!(grad.et_seconds > 0.2, "ET {}", grad.et_seconds);
        assert!(grad.et_seconds < 0.5, "ET {}", grad.et_seconds);
        assert!(grad.observations >= 2, "both halves observed");
    }

    #[test]
    fn cached_runs_exclude_cache_reads_from_et() {
        let app = iterative_app(5);
        let cluster = ClusterConfig::new(1, MachineSpec::paper_example());
        let cold = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        let hot = profile_run(
            &app,
            &Schedule::persist_all([DatasetId(1)]),
            cluster,
            quiet(),
        )
        .unwrap();
        let et_cold = cold
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(1))
            .unwrap()
            .et_seconds;
        let et_hot = hot
            .metrics
            .iter()
            .find(|m| m.dataset == DatasetId(1))
            .unwrap()
            .et_seconds;
        // The hot run computes `parsed` once and cache-reads it afterwards;
        // measured computation time must stay in the same ballpark, not
        // shrink toward the cache-read time.
        assert!(
            (et_hot - et_cold).abs() / et_cold < 0.2,
            "hot {et_hot} vs cold {et_cold}"
        );
    }

    #[test]
    fn deterministic_metrics() {
        let app = iterative_app(2);
        let cluster = ClusterConfig::new(2, MachineSpec::paper_example());
        let a = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        let b = profile_run(&app, &Schedule::empty(), cluster, quiet()).unwrap();
        for (x, y) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(x.dataset, y.dataset);
            assert_eq!(x.et_seconds, y.et_seconds);
            assert_eq!(x.size_bytes, y.size_bytes);
        }
    }
}
