//! Property-based tests of the Spark_i plan rewriting over random DAGs:
//! injection must preserve every structural property the analysis
//! depends on.

use proptest::prelude::*;

use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, JobId, LineageAnalysis, NarrowKind,
    SourceFormat, StagePlan, WideKind,
};
use instrument::{inject, ProfilingOverhead};

#[derive(Debug, Clone)]
struct Recipe {
    nodes: Vec<(bool, Vec<usize>)>,
    jobs: Vec<usize>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    let node = (any::<bool>(), prop::collection::vec(0usize..1000, 1..3));
    (
        prop::collection::vec(node, 1..25),
        prop::collection::vec(0usize..1000, 1..8),
    )
        .prop_map(|(nodes, jobs)| Recipe { nodes, jobs })
}

fn build(r: &Recipe) -> Application {
    let mut b = AppBuilder::new("iprop");
    let mut ids = vec![b.source("src", SourceFormat::DistributedFs, 100, 1 << 20, 4)];
    for (i, (wide, parents)) in r.nodes.iter().enumerate() {
        let mut ps: Vec<DatasetId> = parents.iter().map(|&p| ids[p % ids.len()]).collect();
        ps.sort_unstable();
        ps.dedup();
        let id = if *wide {
            b.wide(
                format!("w{i}"),
                WideKind::ReduceByKey,
                &ps,
                50,
                1 << 16,
                ComputeCost::FREE,
            )
        } else {
            b.narrow(
                format!("n{i}"),
                NarrowKind::Map,
                &ps,
                50,
                1 << 16,
                ComputeCost::FREE,
            )
        };
        ids.push(id);
    }
    for &j in &r.jobs {
        b.job("count", ids[j % ids.len()]);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The instrumented plan is valid and exactly doubles the datasets.
    #[test]
    fn injection_doubles_and_validates(r in recipe()) {
        let app = build(&r);
        let instr = inject(&app, ProfilingOverhead::default());
        prop_assert!(instr.app.validate().is_ok());
        prop_assert_eq!(instr.app.dataset_count(), app.dataset_count() * 2);
        prop_assert_eq!(instr.app.jobs().len(), app.jobs().len());
    }

    /// Computation counts of every copy equal the original's: the
    /// profiling pass-throughs change nothing about lineage reuse.
    #[test]
    fn injection_preserves_computation_counts(r in recipe()) {
        let app = build(&r);
        let instr = inject(&app, ProfilingOverhead::default());
        let la = LineageAnalysis::new(&app);
        let la_i = LineageAnalysis::new(&instr.app);
        for d in app.datasets() {
            let copy = instr.app.dataset(instr.shadow[d.id.index()]).parents[0];
            prop_assert_eq!(
                la.computation_counts()[d.id.index()],
                la_i.computation_counts()[copy.index()],
                "count mismatch for {}", d.id
            );
        }
    }

    /// Narrow profiling operators never change stage structure: every job
    /// has the same number of stages before and after injection.
    #[test]
    fn injection_preserves_stage_counts(r in recipe()) {
        let app = build(&r);
        let instr = inject(&app, ProfilingOverhead::default());
        for ji in 0..app.jobs().len() {
            let orig = StagePlan::build(&app, JobId(ji as u32));
            let inst = StagePlan::build(&instr.app, JobId(ji as u32));
            prop_assert_eq!(orig.stages.len(), inst.stages.len(), "job {}", ji);
        }
    }

    /// The id mappings are mutually consistent: shadow-of(original) points
    /// back via profiles, and the shadow's parent is the original's copy.
    #[test]
    fn id_mappings_roundtrip(r in recipe()) {
        let app = build(&r);
        let instr = inject(&app, ProfilingOverhead::default());
        for d in app.datasets() {
            let sh = instr.shadow[d.id.index()];
            prop_assert_eq!(instr.profiles[sh.index()], Some(d.id));
            let copy = instr.app.dataset(sh).parents[0];
            prop_assert_eq!(instr.copy_of[copy.index()], Some(d.id));
            prop_assert!(instr.app.dataset(sh).op.is_profile());
            prop_assert_eq!(instr.app.dataset(sh).bytes, d.bytes, "shadow is a replica");
        }
    }
}
