//! Property-based tests over random applications: the lineage-analysis
//! invariants Algorithm 1 relies on must hold for *any* valid DAG, not
//! just the curated workloads.

use std::collections::BTreeSet;

use proptest::prelude::*;

use dagflow::{
    AppBuilder, Application, ComputeCost, DatasetId, JobId, LineageAnalysis, NarrowKind, Schedule,
    SourceFormat, StagePlan, WideKind,
};

/// Compact recipe for a random application.
#[derive(Debug, Clone)]
struct AppRecipe {
    /// For each non-source dataset: (wide?, parent picks as raw indices).
    nodes: Vec<(bool, Vec<usize>)>,
    /// Job targets as raw indices.
    jobs: Vec<usize>,
}

fn recipe_strategy() -> impl Strategy<Value = AppRecipe> {
    let node = (any::<bool>(), prop::collection::vec(0usize..1000, 1..3));
    (
        prop::collection::vec(node, 1..40),
        prop::collection::vec(0usize..1000, 1..10),
    )
        .prop_map(|(nodes, jobs)| AppRecipe { nodes, jobs })
}

fn build(recipe: &AppRecipe) -> Application {
    let mut b = AppBuilder::new("prop");
    let mut ids = vec![b.source("src", SourceFormat::DistributedFs, 1000, 1 << 20, 4)];
    for (i, (wide, parents)) in recipe.nodes.iter().enumerate() {
        let parents: Vec<DatasetId> = {
            let mut ps: Vec<DatasetId> = parents.iter().map(|&p| ids[p % ids.len()]).collect();
            ps.sort_unstable();
            ps.dedup();
            ps
        };
        let bytes = 1_000 + (i as u64 * 977) % 1_000_000;
        let id = if *wide {
            b.wide(
                format!("w{i}"),
                WideKind::ReduceByKey,
                &parents,
                100,
                bytes,
                ComputeCost::new(0.001, 0.0, 1e-9),
            )
        } else {
            b.narrow(
                format!("n{i}"),
                NarrowKind::Map,
                &parents,
                100,
                bytes,
                ComputeCost::new(0.001, 0.0, 1e-9),
            )
        };
        ids.push(id);
    }
    for &j in &recipe.jobs {
        b.job("count", ids[j % ids.len()]);
    }
    b.build().expect("recipe-built apps satisfy all invariants")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Baseline pulls equal the published computation counts.
    #[test]
    fn pulls_with_empty_cache_equals_counts(recipe in recipe_strategy()) {
        let app = build(&recipe);
        let la = LineageAnalysis::new(&app);
        prop_assert_eq!(la.pulls(&BTreeSet::new()), la.computation_counts().to_vec());
    }

    /// Caching can only reduce (never increase) any dataset's pulls.
    #[test]
    fn caching_never_increases_pulls(recipe in recipe_strategy(), pick in any::<prop::sample::Index>()) {
        let app = build(&recipe);
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        prop_assume!(!inter.is_empty());
        let cached: BTreeSet<DatasetId> = [inter[pick.index(inter.len())]].into();
        let base = la.pulls(&BTreeSet::new());
        let reduced = la.pulls(&cached);
        for d in app.datasets() {
            if cached.contains(&d.id) {
                continue;
            }
            prop_assert!(
                reduced[d.id.index()] <= base[d.id.index()],
                "{}: {} > {}", d.id, reduced[d.id.index()], base[d.id.index()]
            );
        }
    }

    /// Caching a dataset means each of its parents is pulled at most once
    /// on its behalf: any parent whose every path to a job target passes
    /// through the cached dataset drops to ≤ 1 pull (the single
    /// materialization).
    #[test]
    fn cached_dataset_shields_exclusive_parents(recipe in recipe_strategy(), pick in any::<prop::sample::Index>()) {
        let app = build(&recipe);
        let la = LineageAnalysis::new(&app);
        let inter = la.intermediates();
        prop_assume!(!inter.is_empty());
        let d = inter[pick.index(inter.len())];
        let cached: BTreeSet<DatasetId> = [d].into();
        let pulls = la.pulls(&cached);
        for &p in &app.dataset(d).parents {
            let is_target = app.jobs().iter().any(|j| j.target == p);
            if !is_target && la.children_of(p) == [d] {
                prop_assert!(pulls[p.index()] <= 1, "{p} pulled {}", pulls[p.index()]);
            }
        }
    }

    /// Chain cost is non-negative and never grows when more is cached.
    #[test]
    fn chain_cost_monotone_in_cache(recipe in recipe_strategy(), pick in any::<prop::sample::Index>()) {
        let app = build(&recipe);
        let la = LineageAnalysis::new(&app);
        let et: Vec<f64> = (0..app.dataset_count()).map(|i| (i % 5) as f64 * 0.01).collect();
        let inter = la.intermediates();
        prop_assume!(!inter.is_empty());
        let cached: BTreeSet<DatasetId> = [inter[pick.index(inter.len())]].into();
        for d in app.datasets() {
            if cached.contains(&d.id) {
                continue;
            }
            let base = la.chain_cost(d.id, &BTreeSet::new(), &et);
            let cut = la.chain_cost(d.id, &cached, &et);
            prop_assert!(cut >= 0.0);
            prop_assert!(cut <= base + 1e-12, "{}: {cut} > {base}", d.id);
        }
    }

    /// Every job's stage plan covers the target, respects topology, and
    /// sizes its result stage by the target's partitions.
    #[test]
    fn stage_plans_are_wellformed(recipe in recipe_strategy()) {
        let app = build(&recipe);
        for ji in 0..app.jobs().len() {
            let plan = StagePlan::build(&app, JobId(ji as u32));
            let target = app.job(JobId(ji as u32)).target;
            prop_assert_eq!(plan.result_stage().output, target);
            prop_assert_eq!(plan.result_stage().num_tasks, app.dataset(target).partitions);
            for s in &plan.stages {
                for p in &s.parents {
                    prop_assert!(p.index() < s.id.index(), "parents precede children");
                }
                // Pipeline datasets are id-sorted (topological).
                for w in s.datasets.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
            }
        }
    }

    /// Applications survive a serde round trip with validation intact.
    #[test]
    fn serde_roundtrip_validates(recipe in recipe_strategy()) {
        let app = build(&recipe);
        let json = serde_json::to_string(&app).expect("serialize");
        let back: Application = serde_json::from_str(&json).expect("deserialize");
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.dataset_count(), app.dataset_count());
    }

    /// Memory budget never exceeds the plain sum of persisted sizes, and
    /// equals it for unpersist-free schedules.
    #[test]
    fn memory_budget_bounded_by_sum(recipe in recipe_strategy(), picks in prop::collection::vec(any::<prop::sample::Index>(), 1..4)) {
        let app = build(&recipe);
        let mut ds: Vec<DatasetId> = picks
            .iter()
            .map(|p| DatasetId(p.index(app.dataset_count()) as u32))
            .collect();
        ds.sort_unstable();
        ds.dedup();
        let schedule = Schedule::persist_all(ds.clone());
        let size = |d: DatasetId| app.dataset(d).bytes;
        let total: u64 = ds.iter().map(|&d| size(d)).sum();
        prop_assert_eq!(schedule.memory_budget(size), total);
    }
}
