//! Graphviz DOT export of application plans — the debugging view of the
//! merged DAG (the paper's Figure 4 style), with computation counts,
//! sizes and schedule annotations.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::analysis::LineageAnalysis;
use crate::app::Application;
use crate::schedule::Schedule;

/// Renders the application's merged DAG as Graphviz DOT. Datasets cached
/// by `highlight` are drawn filled; intermediates (n > 1) get their
/// computation count in the label; job targets are boxed.
#[must_use]
pub fn to_dot(app: &Application, highlight: &Schedule) -> String {
    let la = LineageAnalysis::new(app);
    let counts = la.computation_counts();
    let cached: BTreeSet<_> = highlight.persisted().into_iter().collect();
    let targets: BTreeSet<_> = app.jobs().iter().map(|j| j.target).collect();

    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", app.name());
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [fontname=\"Helvetica\", fontsize=10];");
    for d in app.datasets() {
        let mut attrs: Vec<String> = Vec::new();
        let n = counts[d.id.index()];
        let label = if n > 1 {
            format!(
                "{} {}\\nn={} | {:.1} MB",
                d.id,
                d.name,
                n,
                d.bytes as f64 / 1e6
            )
        } else {
            format!("{} {}", d.id, d.name)
        };
        attrs.push(format!("label=\"{label}\""));
        if targets.contains(&d.id) {
            attrs.push("shape=box".to_owned());
        } else if d.op.is_wide() {
            attrs.push("shape=hexagon".to_owned());
        } else {
            attrs.push("shape=ellipse".to_owned());
        }
        if cached.contains(&d.id) {
            attrs.push("style=filled".to_owned());
            attrs.push("fillcolor=lightblue".to_owned());
        } else if n > 1 {
            attrs.push("style=filled".to_owned());
            attrs.push("fillcolor=lightyellow".to_owned());
        }
        let _ = writeln!(out, "  d{} [{}];", d.id.0, attrs.join(", "));
    }
    for d in app.datasets() {
        for p in &d.parents {
            let _ = writeln!(
                out,
                "  d{} -> d{} [label=\"{}\"];",
                p.0,
                d.id.0,
                d.op.mnemonic()
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AppBuilder;
    use crate::dataset::ComputeCost;
    use crate::ops::{NarrowKind, SourceFormat, WideKind};
    use crate::schedule::Schedule;

    fn sample() -> Application {
        let mut b = AppBuilder::new("dotdemo");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 1_000_000, 2);
        let m = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[s],
            10,
            900_000,
            ComputeCost::FREE,
        );
        let g = b.wide_with_partitions(
            "agg",
            WideKind::TreeAggregate,
            &[m],
            1,
            64,
            1,
            ComputeCost::FREE,
        );
        b.job("collect", g);
        b.job("collect2", g);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let app = sample();
        let dot = to_dot(&app, &Schedule::persist_all([crate::DatasetId(1)]));
        assert!(dot.starts_with("digraph \"dotdemo\""));
        for d in app.datasets() {
            assert!(
                dot.contains(&format!("d{} [", d.id.0)),
                "missing node {}",
                d.id
            );
        }
        assert!(dot.contains("d0 -> d1"));
        assert!(dot.contains("d1 -> d2"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cached_nodes_are_highlighted() {
        let app = sample();
        let dot = to_dot(&app, &Schedule::persist_all([crate::DatasetId(1)]));
        let line = dot.lines().find(|l| l.contains("d1 [")).unwrap();
        assert!(line.contains("lightblue"), "{line}");
    }

    #[test]
    fn intermediates_show_counts_and_targets_are_boxed() {
        let app = sample();
        let dot = to_dot(&app, &Schedule::empty());
        // `parsed` is computed twice (two jobs).
        let parsed = dot.lines().find(|l| l.contains("d1 [")).unwrap();
        assert!(parsed.contains("n=2"), "{parsed}");
        let target = dot.lines().find(|l| l.contains("d2 [")).unwrap();
        assert!(target.contains("shape=box"), "{target}");
    }

    #[test]
    fn wide_ops_render_as_hexagons_when_not_targets() {
        let mut b = AppBuilder::new("hex");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 1_000, 2);
        let g = b.wide(
            "agg",
            WideKind::ReduceByKey,
            &[s],
            5,
            500,
            ComputeCost::FREE,
        );
        let v = b.narrow("view", NarrowKind::Map, &[g], 1, 8, ComputeCost::FREE);
        b.job("collect", v);
        let app = b.build().unwrap();
        let dot = to_dot(&app, &Schedule::empty());
        let line = dot.lines().find(|l| l.contains("d1 [")).unwrap();
        assert!(line.contains("hexagon"), "{line}");
    }
}
