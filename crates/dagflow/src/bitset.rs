//! A minimal fixed-capacity bit set.
//!
//! Lineage analysis keeps one membership set per job (which datasets a job's
//! action reaches). Applications in the evaluation have up to ~2 000 datasets
//! and ~200 jobs, so a dense `u64`-word bit set is both smaller and faster
//! than hash sets, and avoids pulling in an external dependency.

use serde::{Deserialize, Serialize};

/// Dense bit set over `0..capacity`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of representable values.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `index`. Returns whether it was newly inserted.
    ///
    /// # Panics
    /// Panics if `index >= capacity`.
    pub fn insert(&mut self, index: usize) -> bool {
        assert!(
            index < self.capacity,
            "bit {index} out of capacity {}",
            self.capacity
        );
        let (w, b) = (index / 64, index % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `index`. Returns whether it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        let (w, b) = (index / 64, index % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test. Out-of-range indices are simply absent.
    #[must_use]
    pub fn contains(&self, index: usize) -> bool {
        if index >= self.capacity {
            return false;
        }
        self.words[index / 64] & (1 << (index % 64)) != 0
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the contained indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 3);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(!s.contains(10_000), "out of range is absent, not a panic");
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(200);
        for i in [3usize, 7, 63, 64, 65, 127, 128, 199] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![3, 7, 63, 64, 65, 127, 128, 199]);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        let mut s = BitSet::new(8);
        s.insert(8);
    }

    #[test]
    fn zero_capacity_set_is_usable() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
    }
}
