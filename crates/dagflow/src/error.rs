//! Error type for plan construction and validation.

use std::fmt;

use crate::dataset::DatasetId;

/// Errors raised while building or validating an [`crate::Application`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A dataset references a parent id that does not exist.
    UnknownParent {
        /// The dataset holding the dangling reference.
        child: DatasetId,
        /// The missing parent id.
        parent: DatasetId,
    },
    /// A dataset's parent has a greater-or-equal id, violating the
    /// topological id-order invariant (and possibly introducing a cycle).
    ParentNotOlder {
        /// The offending dataset.
        child: DatasetId,
        /// The parent with a non-smaller id.
        parent: DatasetId,
    },
    /// A job targets a dataset id that does not exist.
    UnknownJobTarget {
        /// Index of the job in the application's job list.
        job_index: usize,
        /// The missing target id.
        target: DatasetId,
    },
    /// A dataset's stored id does not match its index in the dataset list.
    IdMismatch {
        /// Index in the list.
        index: usize,
        /// Id stored on the dataset at that index.
        found: DatasetId,
    },
    /// A source dataset declared parents, or a transformation declared none.
    ArityMismatch {
        /// The offending dataset.
        dataset: DatasetId,
        /// Human-readable description of the violated arity rule.
        detail: String,
    },
    /// The application has no jobs; nothing would ever be computed.
    NoJobs,
    /// A schedule refers to a dataset that does not exist in the application.
    UnknownScheduleDataset {
        /// The missing dataset id.
        dataset: DatasetId,
    },
    /// A schedule unpersists a dataset it never persisted (or unpersists
    /// twice).
    UnpersistWithoutPersist {
        /// The offending dataset id.
        dataset: DatasetId,
    },
    /// A schedule persists the same dataset twice.
    DuplicatePersist {
        /// The offending dataset id.
        dataset: DatasetId,
    },
    /// A dataset has an invalid annotation (zero partitions, negative cost…).
    InvalidAnnotation {
        /// The offending dataset.
        dataset: DatasetId,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownParent { child, parent } => {
                write!(f, "dataset {child} references unknown parent {parent}")
            }
            DagError::ParentNotOlder { child, parent } => write!(
                f,
                "dataset {child} references parent {parent} with a non-smaller id \
                 (parents must be created before children)"
            ),
            DagError::UnknownJobTarget { job_index, target } => {
                write!(f, "job #{job_index} targets unknown dataset {target}")
            }
            DagError::IdMismatch { index, found } => {
                write!(f, "dataset at index {index} carries id {found}")
            }
            DagError::ArityMismatch { dataset, detail } => {
                write!(f, "dataset {dataset}: {detail}")
            }
            DagError::NoJobs => write!(f, "application has no jobs"),
            DagError::UnknownScheduleDataset { dataset } => {
                write!(f, "schedule references unknown dataset {dataset}")
            }
            DagError::UnpersistWithoutPersist { dataset } => {
                write!(
                    f,
                    "schedule unpersists {dataset} which is not persisted at that point"
                )
            }
            DagError::DuplicatePersist { dataset } => {
                write!(f, "schedule persists {dataset} twice")
            }
            DagError::InvalidAnnotation { dataset, detail } => {
                write!(f, "dataset {dataset} has invalid annotation: {detail}")
            }
        }
    }
}

impl std::error::Error for DagError {}
