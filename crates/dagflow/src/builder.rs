//! Fluent construction of applications with invariants maintained
//! throughout.

use crate::app::{Application, Job};
use crate::dataset::{ComputeCost, Dataset, DatasetId};
use crate::error::DagError;
use crate::ops::{NarrowKind, OpKind, SourceFormat, WideKind};
use crate::schedule::Schedule;
use crate::Bytes;

/// Builder for [`Application`]s.
///
/// Datasets receive dense, monotonically increasing ids in creation order,
/// which guarantees the parent-id-smaller-than-child-id invariant as long as
/// parents are created before children — which the borrow of returned
/// [`DatasetId`]s naturally enforces.
///
/// ```
/// use dagflow::{AppBuilder, ComputeCost, NarrowKind, SourceFormat, WideKind};
///
/// let mut b = AppBuilder::new("demo");
/// let input = b.source("points", SourceFormat::DistributedFs, 10_000, 1 << 20, 8);
/// let parsed = b.narrow("parsed", NarrowKind::Map, &[input], 10_000, 1 << 20,
///                       ComputeCost::new(0.01, 1e-7, 1e-9));
/// let grad = b.wide("gradient", WideKind::TreeAggregate, &[parsed], 1, 1 << 10,
///                   ComputeCost::new(0.01, 0.0, 2e-9));
/// b.job("collect", grad);
/// let app = b.build().unwrap();
/// assert_eq!(app.dataset_count(), 3);
/// ```
#[derive(Debug)]
pub struct AppBuilder {
    name: String,
    datasets: Vec<Dataset>,
    jobs: Vec<Job>,
    default_schedule: Schedule,
}

impl AppBuilder {
    /// Starts a new application plan.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            name: name.into(),
            datasets: Vec::new(),
            jobs: Vec::new(),
            default_schedule: Schedule::empty(),
        }
    }

    fn partitions_of(&self, p: DatasetId) -> u32 {
        assert!(
            p.index() < self.datasets.len(),
            "parent {p} must be created before its child"
        );
        self.datasets[p.index()].partitions
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        parents: &[DatasetId],
        records: u64,
        bytes: Bytes,
        partitions: u32,
        compute: ComputeCost,
    ) -> DatasetId {
        let id =
            DatasetId(u32::try_from(self.datasets.len()).expect("more than u32::MAX datasets"));
        for p in parents {
            assert!(
                p.index() < self.datasets.len(),
                "parent {p} must be created before its child"
            );
        }
        self.datasets.push(Dataset {
            id,
            name: name.into(),
            op,
            parents: parents.to_vec(),
            records,
            bytes,
            partitions,
            compute,
        });
        id
    }

    /// Adds a source dataset read from stable storage. Reading cost is
    /// modelled by the simulator from `bytes` and the cluster's I/O
    /// bandwidth, so no compute cost is given here.
    pub fn source(
        &mut self,
        name: impl Into<String>,
        format: SourceFormat,
        records: u64,
        bytes: Bytes,
        partitions: u32,
    ) -> DatasetId {
        self.push(
            name,
            OpKind::Source(format),
            &[],
            records,
            bytes,
            partitions,
            ComputeCost::FREE,
        )
    }

    /// Adds a narrow transformation. Output partitioning is inherited from
    /// the first parent.
    pub fn narrow(
        &mut self,
        name: impl Into<String>,
        kind: NarrowKind,
        parents: &[DatasetId],
        records: u64,
        bytes: Bytes,
        compute: ComputeCost,
    ) -> DatasetId {
        assert!(!parents.is_empty(), "narrow transformation needs parents");
        let partitions = self.partitions_of(parents[0]);
        self.push(
            name,
            OpKind::Narrow(kind),
            parents,
            records,
            bytes,
            partitions,
            compute,
        )
    }

    /// Adds a narrow transformation with an explicit partition count (for
    /// coalescing maps and the like).
    #[allow(clippy::too_many_arguments)]
    pub fn narrow_with_partitions(
        &mut self,
        name: impl Into<String>,
        kind: NarrowKind,
        parents: &[DatasetId],
        records: u64,
        bytes: Bytes,
        partitions: u32,
        compute: ComputeCost,
    ) -> DatasetId {
        assert!(!parents.is_empty(), "narrow transformation needs parents");
        self.push(
            name,
            OpKind::Narrow(kind),
            parents,
            records,
            bytes,
            partitions,
            compute,
        )
    }

    /// Adds a wide (shuffle) transformation. Output partition count defaults
    /// to the first parent's unless overridden with
    /// [`AppBuilder::wide_with_partitions`].
    pub fn wide(
        &mut self,
        name: impl Into<String>,
        kind: WideKind,
        parents: &[DatasetId],
        records: u64,
        bytes: Bytes,
        compute: ComputeCost,
    ) -> DatasetId {
        assert!(!parents.is_empty(), "wide transformation needs parents");
        let partitions = self.partitions_of(parents[0]);
        self.push(
            name,
            OpKind::Wide(kind),
            parents,
            records,
            bytes,
            partitions,
            compute,
        )
    }

    /// Adds a wide transformation with an explicit output partition count
    /// (e.g. `treeAggregate` collapsing to one partition).
    #[allow(clippy::too_many_arguments)]
    pub fn wide_with_partitions(
        &mut self,
        name: impl Into<String>,
        kind: WideKind,
        parents: &[DatasetId],
        records: u64,
        bytes: Bytes,
        partitions: u32,
        compute: ComputeCost,
    ) -> DatasetId {
        assert!(!parents.is_empty(), "wide transformation needs parents");
        self.push(
            name,
            OpKind::Wide(kind),
            parents,
            records,
            bytes,
            partitions,
            compute,
        )
    }

    /// Appends a job (action) over `target`. Jobs run in append order.
    pub fn job(&mut self, action: impl Into<String>, target: DatasetId) {
        self.jobs.push(Job {
            action: action.into(),
            target,
        });
    }

    /// Sets the developer-chosen default schedule.
    pub fn default_schedule(&mut self, schedule: Schedule) {
        self.default_schedule = schedule;
    }

    /// Number of datasets added so far.
    #[must_use]
    pub fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    /// Finalizes and validates the application.
    pub fn build(self) -> Result<Application, DagError> {
        Application::new(self.name, self.datasets, self.jobs, self.default_schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ScheduleOp;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = AppBuilder::new("x");
        let a = b.source("a", SourceFormat::Generated, 1, 1, 1);
        let c = b.narrow("c", NarrowKind::Map, &[a], 1, 1, ComputeCost::FREE);
        let d = b.wide("d", WideKind::ReduceByKey, &[c], 1, 1, ComputeCost::FREE);
        assert_eq!((a.0, c.0, d.0), (0, 1, 2));
        b.job("count", d);
        let app = b.build().unwrap();
        assert_eq!(app.dataset_count(), 3);
    }

    #[test]
    fn narrow_inherits_partitions_wide_can_override() {
        let mut b = AppBuilder::new("x");
        let a = b.source("a", SourceFormat::Generated, 100, 100, 16);
        let c = b.narrow("c", NarrowKind::Filter, &[a], 50, 50, ComputeCost::FREE);
        let d = b.wide_with_partitions(
            "d",
            WideKind::TreeAggregate,
            &[c],
            1,
            8,
            1,
            ComputeCost::FREE,
        );
        b.job("collect", d);
        let app = b.build().unwrap();
        assert_eq!(app.dataset(c).partitions, 16);
        assert_eq!(app.dataset(d).partitions, 1);
    }

    #[test]
    fn build_rejects_without_jobs() {
        let mut b = AppBuilder::new("nojobs");
        b.source("a", SourceFormat::Generated, 1, 1, 1);
        assert!(matches!(b.build(), Err(DagError::NoJobs)));
    }

    #[test]
    fn default_schedule_flows_through() {
        let mut b = AppBuilder::new("sched");
        let a = b.source("a", SourceFormat::Generated, 1, 1, 1);
        let c = b.narrow("c", NarrowKind::Map, &[a], 1, 1, ComputeCost::FREE);
        b.job("count", c);
        b.default_schedule(Schedule::from_ops(vec![ScheduleOp::Persist(c)]));
        let app = b.build().unwrap();
        assert_eq!(app.default_schedule().persisted(), vec![c]);
    }

    #[test]
    #[should_panic(expected = "created before its child")]
    fn builder_panics_on_forward_parent_reference() {
        let mut b = AppBuilder::new("bad");
        // Forge an id that does not exist yet.
        let ghost = DatasetId(5);
        b.narrow("c", NarrowKind::Map, &[ghost], 1, 1, ComputeCost::FREE);
    }
}
