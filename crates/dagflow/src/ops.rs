//! Operator kinds: sources, narrow transformations, wide (shuffle)
//! transformations.
//!
//! Following Spark's execution model (paper §2.1), *narrow* transformations
//! are pipelined into a stage, while *wide* transformations split the job
//! into stages at shuffle boundaries. A wide transformation is modelled by
//! Juggler as a pair of two consecutive narrow transformations (§3.3,
//! Eq. 3): Shuffle Write in the parent stage and Shuffle Read in the child
//! stage.

use serde::{Deserialize, Serialize};

/// How a source dataset is read from stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SourceFormat {
    /// Distributed file system blocks (HDFS-like); read at disk bandwidth.
    DistributedFs,
    /// Local files on each machine.
    LocalFs,
    /// Synthetic in-memory generation (RNG-backed benchmark inputs).
    Generated,
}

/// Narrow transformation kinds — one output partition depends on a bounded
/// number of parent partitions, so these pipeline within a stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NarrowKind {
    /// `map`, element-wise.
    Map,
    /// `filter`, element-wise with selectivity.
    Filter,
    /// `flatMap`, element-wise fan-out.
    FlatMap,
    /// `mapPartitions`, partition-at-a-time.
    MapPartitions,
    /// `zip`-style pairing of co-partitioned datasets.
    Zip,
    /// `union` of co-partitioned datasets.
    Union,
    /// `sample` without shuffling.
    Sample,
    /// The pass-through profiling operator injected by Spark_i (§4).
    /// Produces a replica of its parent while recording timestamps and
    /// partition sizes.
    Profile,
}

/// Wide transformation kinds — shuffle boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(clippy::enum_variant_names)]
pub enum WideKind {
    /// `reduceByKey`-style combine + shuffle.
    ReduceByKey,
    /// `groupByKey` — full shuffle without map-side combining.
    GroupByKey,
    /// `treeAggregate` — the MLlib aggregation used by iterative gradient
    /// computations.
    TreeAggregate,
    /// `sortByKey` — range-partitioned shuffle.
    SortByKey,
    /// `repartition`/`coalesce` with shuffling.
    Repartition,
    /// Two-input shuffled join.
    Join,
}

impl WideKind {
    /// Whether the transformation combines map-side (Spark's map-side
    /// aggregation): only partial aggregates cross the network, and the
    /// scan/combine work is charged to the map stage's Shuffle Write half.
    /// Non-combining shuffles move the full parent data.
    #[must_use]
    pub fn combines_map_side(&self) -> bool {
        matches!(self, WideKind::ReduceByKey | WideKind::TreeAggregate)
    }
}

/// The operator that produces a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Reads from stable storage; has no parents.
    Source(SourceFormat),
    /// Pipelined, stage-local transformation.
    Narrow(NarrowKind),
    /// Shuffle-inducing transformation; starts a new stage.
    Wide(WideKind),
}

impl OpKind {
    /// Whether the operator induces a shuffle boundary.
    #[must_use]
    pub fn is_wide(&self) -> bool {
        matches!(self, OpKind::Wide(_))
    }

    /// Whether the operator reads from stable storage.
    #[must_use]
    pub fn is_source(&self) -> bool {
        matches!(self, OpKind::Source(_))
    }

    /// Whether the operator is the Spark_i profiling pass-through.
    #[must_use]
    pub fn is_profile(&self) -> bool {
        matches!(self, OpKind::Narrow(NarrowKind::Profile))
    }

    /// Short lowercase operator name, for plan dumps and test assertions.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            OpKind::Source(SourceFormat::DistributedFs) => "read.dfs",
            OpKind::Source(SourceFormat::LocalFs) => "read.local",
            OpKind::Source(SourceFormat::Generated) => "read.gen",
            OpKind::Narrow(NarrowKind::Map) => "map",
            OpKind::Narrow(NarrowKind::Filter) => "filter",
            OpKind::Narrow(NarrowKind::FlatMap) => "flatMap",
            OpKind::Narrow(NarrowKind::MapPartitions) => "mapPartitions",
            OpKind::Narrow(NarrowKind::Zip) => "zip",
            OpKind::Narrow(NarrowKind::Union) => "union",
            OpKind::Narrow(NarrowKind::Sample) => "sample",
            OpKind::Narrow(NarrowKind::Profile) => "profile",
            OpKind::Wide(WideKind::ReduceByKey) => "reduceByKey",
            OpKind::Wide(WideKind::GroupByKey) => "groupByKey",
            OpKind::Wide(WideKind::TreeAggregate) => "treeAggregate",
            OpKind::Wide(WideKind::SortByKey) => "sortByKey",
            OpKind::Wide(WideKind::Repartition) => "repartition",
            OpKind::Wide(WideKind::Join) => "join",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_predicates() {
        assert!(OpKind::Source(SourceFormat::DistributedFs).is_source());
        assert!(!OpKind::Source(SourceFormat::DistributedFs).is_wide());
        assert!(OpKind::Wide(WideKind::TreeAggregate).is_wide());
        assert!(OpKind::Narrow(NarrowKind::Profile).is_profile());
        assert!(!OpKind::Narrow(NarrowKind::Map).is_profile());
    }

    #[test]
    fn mnemonics_are_unique() {
        let all = [
            OpKind::Source(SourceFormat::DistributedFs),
            OpKind::Source(SourceFormat::LocalFs),
            OpKind::Source(SourceFormat::Generated),
            OpKind::Narrow(NarrowKind::Map),
            OpKind::Narrow(NarrowKind::Filter),
            OpKind::Narrow(NarrowKind::FlatMap),
            OpKind::Narrow(NarrowKind::MapPartitions),
            OpKind::Narrow(NarrowKind::Zip),
            OpKind::Narrow(NarrowKind::Union),
            OpKind::Narrow(NarrowKind::Sample),
            OpKind::Narrow(NarrowKind::Profile),
            OpKind::Wide(WideKind::ReduceByKey),
            OpKind::Wide(WideKind::GroupByKey),
            OpKind::Wide(WideKind::TreeAggregate),
            OpKind::Wide(WideKind::SortByKey),
            OpKind::Wide(WideKind::Repartition),
            OpKind::Wide(WideKind::Join),
        ];
        let mut names: Vec<&str> = all.iter().map(OpKind::mnemonic).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
