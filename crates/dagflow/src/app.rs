//! Applications: ordered jobs over a shared dataset graph.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, DatasetId};
use crate::error::DagError;
use crate::schedule::Schedule;

/// Identifier of a job within an application — its position in the job list.
/// Jobs run sequentially in this order (paper §2.1: "one or more sequential
/// jobs").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u32);

impl JobId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// A job: one action over a target dataset. Triggers the computation of the
/// target's ancestor closure (its DAG of transformations).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Action name (`count`, `collect`, `treeAggregate-action`, …).
    pub action: String,
    /// The dataset the action consumes — the leaf of this job's DAG.
    pub target: DatasetId,
}

/// An application: a named, validated plan of datasets and sequential jobs,
/// plus the *default schedule* — the datasets the application's developers
/// chose to cache (HiBench's `p(…)` calls), which Juggler's engine overrides.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    datasets: Vec<Dataset>,
    jobs: Vec<Job>,
    default_schedule: Schedule,
}

impl Application {
    /// Assembles an application from parts, validating all invariants.
    ///
    /// Prefer [`crate::AppBuilder`], which maintains the invariants during
    /// construction; this constructor exists for deserialized or
    /// programmatically assembled plans.
    pub fn new(
        name: impl Into<String>,
        datasets: Vec<Dataset>,
        jobs: Vec<Job>,
        default_schedule: Schedule,
    ) -> Result<Self, DagError> {
        let app = Application {
            name: name.into(),
            datasets,
            jobs,
            default_schedule,
        };
        app.validate()?;
        Ok(app)
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All datasets, indexed by id.
    #[must_use]
    pub fn datasets(&self) -> &[Dataset] {
        &self.datasets
    }

    /// Looks up one dataset.
    ///
    /// # Panics
    /// Panics if the id is out of range — ids produced by this application
    /// are always valid, so passing a foreign id is a logic error.
    #[must_use]
    pub fn dataset(&self, id: DatasetId) -> &Dataset {
        &self.datasets[id.index()]
    }

    /// The sequential job list.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Looks up one job.
    #[must_use]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Developer-chosen caching (the HiBench default in the evaluation).
    #[must_use]
    pub fn default_schedule(&self) -> &Schedule {
        &self.default_schedule
    }

    /// Number of datasets (the paper's Table 1 "Datasets" column).
    #[must_use]
    pub fn dataset_count(&self) -> usize {
        self.datasets.len()
    }

    /// Total bytes of all source datasets (Table 1 "Input data").
    #[must_use]
    pub fn input_bytes(&self) -> u64 {
        self.datasets
            .iter()
            .filter(|d| d.op.is_source())
            .map(|d| d.bytes)
            .sum()
    }

    /// Checks every structural invariant. `Ok` means:
    /// * dataset ids are dense and match indices,
    /// * parents exist and have strictly smaller ids (acyclicity),
    /// * sources have no parents, transformations have at least one,
    /// * every job targets an existing dataset and at least one job exists,
    /// * annotations are sane (non-zero partitions, valid compute cost),
    /// * the default schedule is well-formed and refers to known datasets.
    pub fn validate(&self) -> Result<(), DagError> {
        for (index, d) in self.datasets.iter().enumerate() {
            if d.id.index() != index {
                return Err(DagError::IdMismatch { index, found: d.id });
            }
            if d.op.is_source() && !d.parents.is_empty() {
                return Err(DagError::ArityMismatch {
                    dataset: d.id,
                    detail: "source datasets must not have parents".into(),
                });
            }
            if !d.op.is_source() && d.parents.is_empty() {
                return Err(DagError::ArityMismatch {
                    dataset: d.id,
                    detail: "transformations must have at least one parent".into(),
                });
            }
            for &p in &d.parents {
                if p.index() >= self.datasets.len() {
                    return Err(DagError::UnknownParent {
                        child: d.id,
                        parent: p,
                    });
                }
                if p >= d.id {
                    return Err(DagError::ParentNotOlder {
                        child: d.id,
                        parent: p,
                    });
                }
            }
            if d.partitions == 0 {
                return Err(DagError::InvalidAnnotation {
                    dataset: d.id,
                    detail: "partitions must be >= 1".into(),
                });
            }
            if !d.compute.is_valid() {
                return Err(DagError::InvalidAnnotation {
                    dataset: d.id,
                    detail: "compute cost coefficients must be finite and >= 0".into(),
                });
            }
        }
        if self.jobs.is_empty() {
            return Err(DagError::NoJobs);
        }
        for (job_index, j) in self.jobs.iter().enumerate() {
            if j.target.index() >= self.datasets.len() {
                return Err(DagError::UnknownJobTarget {
                    job_index,
                    target: j.target,
                });
            }
        }
        self.default_schedule.check()?;
        for op in self.default_schedule.ops() {
            if op.dataset().index() >= self.datasets.len() {
                return Err(DagError::UnknownScheduleDataset {
                    dataset: op.dataset(),
                });
            }
        }
        Ok(())
    }

    /// Validates an external schedule against this application.
    pub fn check_schedule(&self, schedule: &Schedule) -> Result<(), DagError> {
        schedule.check()?;
        for op in schedule.ops() {
            if op.dataset().index() >= self.datasets.len() {
                return Err(DagError::UnknownScheduleDataset {
                    dataset: op.dataset(),
                });
            }
        }
        Ok(())
    }

    /// Replaces the default schedule (used by workload generators after
    /// construction).
    pub fn set_default_schedule(&mut self, schedule: Schedule) -> Result<(), DagError> {
        self.check_schedule(&schedule)?;
        self.default_schedule = schedule;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AppBuilder;
    use crate::dataset::ComputeCost;
    use crate::ops::{NarrowKind, SourceFormat};
    use crate::schedule::{Schedule, ScheduleOp};

    fn tiny_app() -> Application {
        let mut b = AppBuilder::new("tiny");
        let src = b.source("in", SourceFormat::DistributedFs, 100, 1_000, 4);
        let mapped = b.narrow(
            "mapped",
            NarrowKind::Map,
            &[src],
            100,
            1_000,
            ComputeCost::FREE,
        );
        b.job("count", mapped);
        b.build().expect("tiny app is valid")
    }

    #[test]
    fn valid_app_roundtrips_through_serde() {
        let app = tiny_app();
        let json = serde_json::to_string(&app).unwrap();
        let back: Application = serde_json::from_str(&json).unwrap();
        assert_eq!(app, back);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn validate_rejects_id_mismatch() {
        let mut app = tiny_app();
        // Manual surgery through serde to break the invariant.
        let mut v: serde_json::Value = serde_json::to_value(&app).unwrap();
        v["datasets"][0]["id"] = serde_json::json!(7);
        app = serde_json::from_value(v).unwrap();
        assert!(matches!(app.validate(), Err(DagError::IdMismatch { .. })));
    }

    #[test]
    fn validate_rejects_unknown_job_target() {
        let mut v: serde_json::Value = serde_json::to_value(tiny_app()).unwrap();
        v["jobs"][0]["target"] = serde_json::json!(99);
        let app: Application = serde_json::from_value(v).unwrap();
        assert!(matches!(
            app.validate(),
            Err(DagError::UnknownJobTarget { .. })
        ));
    }

    #[test]
    fn validate_rejects_source_with_parents() {
        let mut v: serde_json::Value = serde_json::to_value(tiny_app()).unwrap();
        v["datasets"][1]["op"] = serde_json::json!({ "Source": "DistributedFs" });
        let app: Application = serde_json::from_value(v).unwrap();
        assert!(matches!(
            app.validate(),
            Err(DagError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_zero_partitions() {
        let mut v: serde_json::Value = serde_json::to_value(tiny_app()).unwrap();
        v["datasets"][0]["partitions"] = serde_json::json!(0);
        let app: Application = serde_json::from_value(v).unwrap();
        assert!(matches!(
            app.validate(),
            Err(DagError::InvalidAnnotation { .. })
        ));
    }

    #[test]
    fn check_schedule_rejects_foreign_dataset() {
        let app = tiny_app();
        let s = Schedule::from_ops(vec![ScheduleOp::Persist(DatasetId(42))]);
        assert!(matches!(
            app.check_schedule(&s),
            Err(DagError::UnknownScheduleDataset { .. })
        ));
    }

    #[test]
    fn input_bytes_sums_sources_only() {
        let app = tiny_app();
        assert_eq!(app.input_bytes(), 1_000);
    }

    #[test]
    fn set_default_schedule_validates() {
        let mut app = tiny_app();
        let good = Schedule::persist_all([DatasetId(1)]);
        assert!(app.set_default_schedule(good.clone()).is_ok());
        assert_eq!(app.default_schedule(), &good);
        let bad = Schedule::persist_all([DatasetId(9)]);
        assert!(app.set_default_schedule(bad).is_err());
    }

    #[test]
    fn validate_rejects_no_jobs() {
        let app = Application::new("empty", vec![], vec![], Schedule::empty());
        assert!(matches!(app, Err(DagError::NoJobs)));
    }
}
