//! Datasets (Spark RDDs) and their ground-truth annotations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ops::OpKind;
use crate::{Bytes, Seconds};

/// Identifier of a dataset within an application. Ids are dense indices into
/// [`crate::Application::datasets`], and a dataset's parents always carry
/// strictly smaller ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatasetId(pub u32);

impl DatasetId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

/// Ground-truth cost of computing one partition of a dataset from its
/// parents, used by the simulator. All coefficients are per *task*
/// (per-partition): the simulator multiplies `per_record` by the partition's
/// record count and `per_input_byte` by the partition's input bytes.
///
/// These are the quantities Juggler never gets to see directly — it observes
/// them only through the instrumentation of §4 and reconstructs
/// per-transformation times with the §3.3 model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeCost {
    /// Fixed per-task setup time, seconds.
    pub fixed_s: Seconds,
    /// Seconds per output record processed.
    pub per_record_s: Seconds,
    /// Seconds per input byte consumed (scan/deserialization cost).
    pub per_input_byte_s: Seconds,
}

impl ComputeCost {
    /// A zero-cost annotation (useful for pass-through profiling operators).
    pub const FREE: ComputeCost = ComputeCost {
        fixed_s: 0.0,
        per_record_s: 0.0,
        per_input_byte_s: 0.0,
    };

    /// Convenience constructor.
    #[must_use]
    pub fn new(fixed_s: Seconds, per_record_s: Seconds, per_input_byte_s: Seconds) -> Self {
        ComputeCost {
            fixed_s,
            per_record_s,
            per_input_byte_s,
        }
    }

    /// Time to compute one partition holding `records` output records from
    /// `input_bytes` of parent data.
    #[must_use]
    pub fn task_seconds(&self, records: f64, input_bytes: f64) -> Seconds {
        self.fixed_s + self.per_record_s * records + self.per_input_byte_s * input_bytes
    }

    /// Whether every coefficient is finite and non-negative.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        [self.fixed_s, self.per_record_s, self.per_input_byte_s]
            .iter()
            .all(|c| c.is_finite() && *c >= 0.0)
    }
}

/// A dataset node in the application's lineage graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Dense identifier; equals the dataset's index in the application.
    pub id: DatasetId,
    /// Human-readable name (`"points"`, `"gradient[3]"`, …).
    pub name: String,
    /// Operator producing this dataset.
    pub op: OpKind,
    /// Producing operator's inputs; empty iff `op` is a source.
    pub parents: Vec<DatasetId>,
    /// Total record count across partitions (ground truth).
    pub records: u64,
    /// Total size in bytes across partitions (ground truth; what Spark would
    /// report as the in-memory size when cached).
    pub bytes: Bytes,
    /// Number of partitions, i.e. tasks per computing stage.
    pub partitions: u32,
    /// Ground-truth compute cost of the producing operator.
    pub compute: ComputeCost,
}

impl Dataset {
    /// Average partition size in bytes.
    #[must_use]
    pub fn partition_bytes(&self) -> f64 {
        self.bytes as f64 / f64::from(self.partitions.max(1))
    }

    /// Average records per partition.
    #[must_use]
    pub fn partition_records(&self) -> f64 {
        self.records as f64 / f64::from(self.partitions.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{NarrowKind, OpKind};

    #[test]
    fn compute_cost_task_seconds() {
        let c = ComputeCost::new(0.5, 1e-6, 1e-9);
        let t = c.task_seconds(1_000_000.0, 1_000_000_000.0);
        assert!((t - (0.5 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn compute_cost_validity() {
        assert!(ComputeCost::FREE.is_valid());
        assert!(!ComputeCost::new(-1.0, 0.0, 0.0).is_valid());
        assert!(!ComputeCost::new(f64::NAN, 0.0, 0.0).is_valid());
        assert!(!ComputeCost::new(0.0, f64::INFINITY, 0.0).is_valid());
    }

    #[test]
    fn partition_means_guard_zero_partitions() {
        let d = Dataset {
            id: DatasetId(0),
            name: "x".into(),
            op: OpKind::Narrow(NarrowKind::Map),
            parents: vec![],
            records: 10,
            bytes: 100,
            partitions: 0,
            compute: ComputeCost::FREE,
        };
        assert_eq!(d.partition_bytes(), 100.0);
        assert_eq!(d.partition_records(), 10.0);
    }

    #[test]
    fn dataset_id_display_and_index() {
        assert_eq!(DatasetId(11).to_string(), "D11");
        assert_eq!(DatasetId(11).index(), 11);
    }
}
