//! Caching schedules — ordered persist/unpersist instruction lists.
//!
//! A *schedule* (paper §5) is Juggler's unit of caching decision: an ordered
//! list of datasets to persist, optionally interleaved with unpersist
//! instructions that free a cached ancestor once all of its remaining uses go
//! through its (also cached) descendant. Table 2 of the paper writes these as
//! `p(1) p(2) u(2) p(11)`.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dataset::DatasetId;
use crate::Bytes;

/// One instruction in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScheduleOp {
    /// Cache the dataset when it is first computed.
    Persist(DatasetId),
    /// Drop the dataset's cached blocks immediately before the *next*
    /// persist in the schedule takes effect.
    Unpersist(DatasetId),
}

impl ScheduleOp {
    /// The dataset the instruction refers to.
    #[must_use]
    pub fn dataset(&self) -> DatasetId {
        match *self {
            ScheduleOp::Persist(d) | ScheduleOp::Unpersist(d) => d,
        }
    }
}

impl fmt::Display for ScheduleOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleOp::Persist(d) => write!(f, "p({})", d.0),
            ScheduleOp::Unpersist(d) => write!(f, "u({})", d.0),
        }
    }
}

/// An ordered persist/unpersist instruction list.
///
/// The empty schedule is valid and means "cache nothing" (HiBench's default
/// for Linear Regression, for instance).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Schedule {
    ops: Vec<ScheduleOp>,
}

impl Schedule {
    /// The empty schedule: cache nothing.
    #[must_use]
    pub fn empty() -> Self {
        Schedule::default()
    }

    /// Builds a schedule from instructions.
    #[must_use]
    pub fn from_ops(ops: Vec<ScheduleOp>) -> Self {
        Schedule { ops }
    }

    /// A schedule that persists the given datasets, in order, without
    /// unpersists.
    #[must_use]
    pub fn persist_all<I: IntoIterator<Item = DatasetId>>(datasets: I) -> Self {
        Schedule {
            ops: datasets.into_iter().map(ScheduleOp::Persist).collect(),
        }
    }

    /// The instructions, in order.
    #[must_use]
    pub fn ops(&self) -> &[ScheduleOp] {
        &self.ops
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the schedule caches nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// All datasets the schedule persists (at any point), in persist order.
    #[must_use]
    pub fn persisted(&self) -> Vec<DatasetId> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                ScheduleOp::Persist(d) => Some(*d),
                ScheduleOp::Unpersist(_) => None,
            })
            .collect()
    }

    /// All datasets the schedule unpersists, in order.
    #[must_use]
    pub fn unpersisted(&self) -> Vec<DatasetId> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                ScheduleOp::Unpersist(d) => Some(*d),
                ScheduleOp::Persist(_) => None,
            })
            .collect()
    }

    /// The set of datasets still cached after the whole schedule has run.
    #[must_use]
    pub fn resident_at_end(&self) -> BTreeSet<DatasetId> {
        let mut live = BTreeSet::new();
        for op in &self.ops {
            match op {
                ScheduleOp::Persist(d) => {
                    live.insert(*d);
                }
                ScheduleOp::Unpersist(d) => {
                    live.remove(d);
                }
            }
        }
        live
    }

    /// Checks internal consistency: persists are unique and every unpersist
    /// refers to a dataset persisted earlier (and not yet unpersisted).
    pub fn check(&self) -> Result<(), crate::DagError> {
        let mut live = BTreeSet::new();
        let mut ever = BTreeSet::new();
        for op in &self.ops {
            match op {
                ScheduleOp::Persist(d) => {
                    if !ever.insert(*d) {
                        return Err(crate::DagError::DuplicatePersist { dataset: *d });
                    }
                    live.insert(*d);
                }
                ScheduleOp::Unpersist(d) => {
                    if !live.remove(d) {
                        return Err(crate::DagError::UnpersistWithoutPersist { dataset: *d });
                    }
                }
            }
        }
        Ok(())
    }

    /// Memory budget of the schedule (paper §5.1): the peak amount of cache
    /// the schedule occupies, assuming each `u(X)` that *immediately
    /// precedes* a `p(Y)` lets X and Y share a slot of size `max(|X|, |Y|)`
    /// — "unpersisting the first dataset decreases the SCHEDULE memory
    /// budget by the size of the smaller of the two datasets".
    ///
    /// `size_of` maps a dataset to its (predicted or measured) byte size.
    #[must_use]
    pub fn memory_budget<F: Fn(DatasetId) -> Bytes>(&self, size_of: F) -> Bytes {
        let mut total: u64 = 0;
        let mut prev_unpersist: Option<DatasetId> = None;
        for op in &self.ops {
            match op {
                ScheduleOp::Persist(d) => {
                    let mut contribution = size_of(*d);
                    if let Some(x) = prev_unpersist.take() {
                        // X's slot is reused: the pair occupies max(|X|, |Y|),
                        // and |X| was already counted when X was persisted, so
                        // subtract the smaller of the two.
                        contribution = contribution.saturating_sub(size_of(x).min(contribution));
                    }
                    total += contribution;
                }
                ScheduleOp::Unpersist(d) => prev_unpersist = Some(*d),
            }
        }
        total
    }

    /// Parses the paper's Table 2 notation — `p(1) p(2) u(2) p(11)` — back
    /// into a schedule (`-` or an empty string parse as the empty
    /// schedule). Inverse of [`Schedule::notation`]; the result is
    /// [`Schedule::check`]ed.
    pub fn parse(notation: &str) -> Result<Self, crate::DagError> {
        let trimmed = notation.trim();
        if trimmed.is_empty() || trimmed == "-" {
            return Ok(Schedule::empty());
        }
        let mut ops = Vec::new();
        for token in trimmed.split_whitespace() {
            if !token.is_char_boundary(1) {
                return Err(crate::DagError::UnknownScheduleDataset {
                    dataset: DatasetId(u32::MAX),
                });
            }
            let (kind, rest) = token.split_at(1);
            let id: u32 = rest
                .strip_prefix('(')
                .and_then(|r| r.strip_suffix(')'))
                .and_then(|r| r.parse().ok())
                .ok_or(crate::DagError::UnknownScheduleDataset {
                    dataset: DatasetId(u32::MAX),
                })?;
            let op = match kind {
                "p" => ScheduleOp::Persist(DatasetId(id)),
                "u" => ScheduleOp::Unpersist(DatasetId(id)),
                _ => {
                    return Err(crate::DagError::UnknownScheduleDataset {
                        dataset: DatasetId(id),
                    })
                }
            };
            ops.push(op);
        }
        let schedule = Schedule::from_ops(ops);
        schedule.check()?;
        Ok(schedule)
    }

    /// Renders the schedule in the paper's Table 2 notation,
    /// e.g. `p(1) p(2) u(2) p(11)`. The empty schedule renders as `-`.
    #[must_use]
    pub fn notation(&self) -> String {
        if self.ops.is_empty() {
            return "-".to_owned();
        }
        let parts: Vec<String> = self.ops.iter().map(ToString::to_string).collect();
        parts.join(" ")
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u32) -> DatasetId {
        DatasetId(i)
    }

    #[test]
    fn notation_matches_paper_table2() {
        let s = Schedule::from_ops(vec![
            ScheduleOp::Persist(d(1)),
            ScheduleOp::Persist(d(2)),
            ScheduleOp::Unpersist(d(2)),
            ScheduleOp::Persist(d(11)),
        ]);
        assert_eq!(s.notation(), "p(1) p(2) u(2) p(11)");
        assert_eq!(Schedule::empty().notation(), "-");
    }

    #[test]
    fn check_accepts_wellformed() {
        let s = Schedule::from_ops(vec![
            ScheduleOp::Persist(d(1)),
            ScheduleOp::Unpersist(d(1)),
            ScheduleOp::Persist(d(2)),
        ]);
        assert!(s.check().is_ok());
        assert_eq!(
            s.resident_at_end().into_iter().collect::<Vec<_>>(),
            vec![d(2)]
        );
    }

    #[test]
    fn check_rejects_double_persist() {
        let s = Schedule::from_ops(vec![ScheduleOp::Persist(d(1)), ScheduleOp::Persist(d(1))]);
        assert!(matches!(
            s.check(),
            Err(crate::DagError::DuplicatePersist { dataset }) if dataset == d(1)
        ));
    }

    #[test]
    fn check_rejects_dangling_unpersist() {
        let s = Schedule::from_ops(vec![ScheduleOp::Unpersist(d(3))]);
        assert!(matches!(
            s.check(),
            Err(crate::DagError::UnpersistWithoutPersist { dataset }) if dataset == d(3)
        ));
        // Unpersisting twice is also dangling the second time.
        let s = Schedule::from_ops(vec![
            ScheduleOp::Persist(d(3)),
            ScheduleOp::Unpersist(d(3)),
            ScheduleOp::Unpersist(d(3)),
        ]);
        assert!(s.check().is_err());
    }

    #[test]
    fn memory_budget_without_unpersist_is_sum() {
        let s = Schedule::persist_all([d(0), d(1)]);
        let size = |x: DatasetId| if x == d(0) { 100 } else { 40 };
        assert_eq!(s.memory_budget(size), 140);
    }

    /// The paper's LOR example: schedule 3 = p(1) p(2) u(2) p(11) with sizes
    /// |D1| = 76.347 MB, |D2| = 45.961 MB, |D11| = 45.975 MB has budget
    /// |D1| + max(|D2|, |D11|) = 122.322 MB.
    #[test]
    fn memory_budget_with_unpersist_matches_paper_example() {
        let s = Schedule::from_ops(vec![
            ScheduleOp::Persist(d(1)),
            ScheduleOp::Persist(d(2)),
            ScheduleOp::Unpersist(d(2)),
            ScheduleOp::Persist(d(11)),
        ]);
        let size = |x: DatasetId| match x.0 {
            1 => 76_347,
            2 => 45_961,
            11 => 45_975,
            _ => unreachable!(),
        };
        assert_eq!(s.memory_budget(size), 76_347 + 45_975);
    }

    #[test]
    fn memory_budget_chained_unpersists() {
        // PCA-style: p(1) u(1) p(2) u(2) p(13) — each pair shares a slot.
        let s = Schedule::from_ops(vec![
            ScheduleOp::Persist(d(1)),
            ScheduleOp::Unpersist(d(1)),
            ScheduleOp::Persist(d(2)),
            ScheduleOp::Unpersist(d(2)),
            ScheduleOp::Persist(d(13)),
        ]);
        let size = |x: DatasetId| match x.0 {
            1 => 100,
            2 => 80,
            13 => 120,
            _ => unreachable!(),
        };
        // 100 + (80 - 80) + (120 - 80)  = peak while 13 replaces 2 = 140?
        // Walk: p(1): total=100. u(1) p(2): 2 contributes 80-min(100,80)=0.
        // u(2) p(13): 13 contributes 120-min(80,120)=40. Total 140.
        assert_eq!(s.memory_budget(size), 140);
    }

    #[test]
    fn parse_roundtrips_notation() {
        for text in [
            "p(2)",
            "p(1) p(2) u(2) p(11)",
            "p(1) u(1) p(2) u(2) p(13)",
            "-",
        ] {
            let s = Schedule::parse(text).unwrap();
            assert_eq!(s.notation(), text);
        }
        assert_eq!(Schedule::parse("  ").unwrap(), Schedule::empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Schedule::parse("persist(1)").is_err());
        assert!(Schedule::parse("p(x)").is_err());
        assert!(Schedule::parse("p(1").is_err());
        assert!(
            Schedule::parse("u(1)").is_err(),
            "dangling unpersist fails check()"
        );
        assert!(Schedule::parse("p(1) p(1)").is_err(), "duplicate persist");
    }

    #[test]
    fn unpersisted_and_persisted_listings() {
        let s = Schedule::from_ops(vec![
            ScheduleOp::Persist(d(5)),
            ScheduleOp::Unpersist(d(5)),
            ScheduleOp::Persist(d(7)),
        ]);
        assert_eq!(s.persisted(), vec![d(5), d(7)]);
        assert_eq!(s.unpersisted(), vec![d(5)]);
    }
}
