#![warn(missing_docs)]
//! # dagflow — RDD-style lineage DAGs for the Juggler reproduction
//!
//! This crate is the structural substrate under the Juggler (SIGMOD '22)
//! reproduction. It models what Apache Spark calls the *logical plan*:
//!
//! * [`Dataset`]s (Spark RDDs) produced by [`OpKind`]s — sources, narrow
//!   transformations, and wide (shuffle) transformations;
//! * [`Job`]s, each triggered by one action on a target dataset;
//! * an [`Application`] — an ordered list of jobs over a shared dataset graph;
//! * [`Schedule`]s — ordered persist/unpersist instruction lists (Juggler's
//!   unit of caching decisions);
//! * [`LineageAnalysis`] — the merged-DAG analysis of the paper's §3.1:
//!   computation counts, cache-aware *pulls* (effective computation counts
//!   given a set of cached datasets), recursive chain costs, and the
//!   reachability predicates Algorithm 1 needs;
//! * [`stages`] — splitting a job at shuffle boundaries into stages, as
//!   Spark's `DAGScheduler` does (§2.1).
//!
//! The crate is engine-agnostic: it knows *structure* and *annotations*
//! (record counts, byte sizes, compute-cost coefficients) but does not
//! execute anything. Execution lives in `cluster-sim`.
//!
//! ## Invariants
//!
//! * Dataset ids are dense indices into [`Application::datasets`].
//! * A dataset's parents always have strictly smaller ids, which makes every
//!   application acyclic by construction and id order a topological order.
//! * Every job targets an existing dataset.
//!
//! [`AppBuilder`] enforces these; [`Application::validate`] re-checks them on
//! deserialized plans.

pub mod analysis;
pub mod app;
pub mod bitset;
pub mod builder;
pub mod dataset;
pub mod dot;
pub mod error;
pub mod ops;
pub mod schedule;
pub mod stages;

pub use analysis::LineageAnalysis;
pub use app::{Application, Job, JobId};
pub use builder::AppBuilder;
pub use dataset::{ComputeCost, Dataset, DatasetId};
pub use dot::to_dot;
pub use error::DagError;
pub use ops::{NarrowKind, OpKind, SourceFormat, WideKind};
pub use schedule::{Schedule, ScheduleOp};
pub use stages::{Stage, StageId, StagePlan};

/// Byte counts for dataset and partition sizes.
pub type Bytes = u64;

/// Wall-clock durations, in seconds.
pub type Seconds = f64;
