//! Merged-DAG lineage analysis (paper §3.1) and the cache-aware
//! computation-count semantics Algorithm 1 relies on.
//!
//! ## Computation counts
//!
//! "The number of times to compute a dataset is equal to the number of its
//! leaves in the resulting \[merged\] DAG" (§3.1). We implement this as path
//! counting: within each job, a dataset is computed once per lineage path
//! from the dataset down to the job's action target (Spark recursively
//! computes parent partitions without memoization), and the application
//! total is the sum over jobs.
//!
//! ## Cache-aware pulls
//!
//! Algorithm 1 updates computation counts as datasets enter a schedule. The
//! paper's incremental bookkeeping (`n_p −= n_Dmax − 1`) is presented for
//! chains; we generalize it to arbitrary DAGs by computing, from first
//! principles, how many times a dataset would be computed given a set of
//! cached datasets:
//!
//! * a path is *cut* at the first cached dataset strictly below the queried
//!   one (later computations read the cache instead of recomputing);
//! * every cached dataset is itself materialized exactly once — in the first
//!   job that contains it — and that single materialization pulls its
//!   uncached ancestors once per uncached path.
//!
//! This reproduces every number in the paper's §5.1 worked Logistic
//! Regression example (see the golden tests in `juggler-core`).

use std::collections::BTreeSet;

use crate::app::{Application, JobId};
use crate::bitset::BitSet;
use crate::dataset::DatasetId;
use crate::Seconds;

/// Precomputed lineage structure over an application: global child edges,
/// per-job membership (ancestor closure of each job target), first containing
/// job per dataset, and baseline computation counts.
#[derive(Debug)]
pub struct LineageAnalysis<'a> {
    app: &'a Application,
    /// Children of each dataset (global, across all jobs).
    children: Vec<Vec<DatasetId>>,
    /// For each job, the set of datasets its action reaches.
    job_members: Vec<BitSet>,
    /// First job (in sequential order) whose DAG contains each dataset, if
    /// any.
    first_job: Vec<Option<JobId>>,
    /// Baseline computation counts (no caching), saturating.
    counts: Vec<u64>,
}

impl<'a> LineageAnalysis<'a> {
    /// Builds the analysis. Cost: `O(jobs × datasets + edges)`.
    #[must_use]
    pub fn new(app: &'a Application) -> Self {
        let n = app.dataset_count();
        let mut children: Vec<Vec<DatasetId>> = vec![Vec::new(); n];
        for d in app.datasets() {
            for &p in &d.parents {
                children[p.index()].push(d.id);
            }
        }

        // Per-job ancestor closures, walking parents from the target.
        let mut job_members = Vec::with_capacity(app.jobs().len());
        let mut first_job = vec![None; n];
        for (ji, job) in app.jobs().iter().enumerate() {
            let mut members = BitSet::new(n);
            let mut stack = vec![job.target];
            while let Some(x) = stack.pop() {
                if members.insert(x.index()) {
                    if first_job[x.index()].is_none() {
                        first_job[x.index()] = Some(JobId(ji as u32));
                    }
                    stack.extend(app.dataset(x).parents.iter().copied());
                }
            }
            job_members.push(members);
        }

        let mut this = LineageAnalysis {
            app,
            children,
            job_members,
            first_job,
            counts: Vec::new(),
        };
        this.counts = this.pulls(&BTreeSet::new());
        this
    }

    /// The application under analysis.
    #[must_use]
    pub fn app(&self) -> &'a Application {
        self.app
    }

    /// Baseline computation counts `n(D)` with nothing cached (§3.1).
    #[must_use]
    pub fn computation_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Datasets computed more than once — the paper's *intermediate
    /// datasets* and the candidate pool of Algorithm 1.
    #[must_use]
    pub fn intermediates(&self) -> Vec<DatasetId> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 1)
            .map(|(i, _)| DatasetId(i as u32))
            .collect()
    }

    /// Global children of a dataset.
    #[must_use]
    pub fn children_of(&self, d: DatasetId) -> &[DatasetId] {
        &self.children[d.index()]
    }

    /// First job whose DAG contains `d`, i.e. the job during which `d` (and,
    /// if persisted, its cached copy) first materializes.
    #[must_use]
    pub fn first_job_of(&self, d: DatasetId) -> Option<JobId> {
        self.first_job[d.index()]
    }

    /// Whether `d` belongs to job `j`'s DAG.
    #[must_use]
    pub fn in_job(&self, d: DatasetId, j: JobId) -> bool {
        self.job_members[j.index()].contains(d.index())
    }

    /// Whether `descendant` is reachable from `ancestor` via child edges
    /// (strictly below it).
    #[must_use]
    pub fn is_descendant(&self, descendant: DatasetId, ancestor: DatasetId) -> bool {
        if descendant == ancestor {
            return false;
        }
        let mut seen = BitSet::new(self.app.dataset_count());
        let mut stack = vec![ancestor];
        while let Some(x) = stack.pop() {
            for &c in &self.children[x.index()] {
                if c == descendant {
                    return true;
                }
                // Child ids are always larger; no point exploring past the
                // target id.
                if c < descendant && seen.insert(c.index()) {
                    stack.push(c);
                }
            }
        }
        false
    }

    /// Whether `d` is the *single child* of any dataset in `set` — the
    /// exclusion rule of Algorithm 1 (lines 12–13): a single-child dataset
    /// is not added to a schedule that already contains its parent.
    #[must_use]
    pub fn is_single_child_of_any(&self, d: DatasetId, set: &BTreeSet<DatasetId>) -> bool {
        self.app
            .dataset(d)
            .parents
            .iter()
            .any(|p| set.contains(p) && self.children[p.index()].len() == 1)
    }

    /// Cache-aware computation counts: how many times each dataset would be
    /// computed over the whole application if the datasets in `cached` were
    /// persisted (and stayed resident). With `cached` empty this is the
    /// baseline `n(D)`.
    ///
    /// For datasets *in* `cached` the returned value counts cache reads
    /// (demands), not computations — Algorithm 1 only ever queries
    /// uncached candidates, so this distinction is deliberate.
    ///
    /// Counts saturate at `u64::MAX` on pathological DAGs (path counts can
    /// grow exponentially in diamonds).
    #[must_use]
    pub fn pulls(&self, cached: &BTreeSet<DatasetId>) -> Vec<u64> {
        let n = self.app.dataset_count();
        let mut total = vec![0u64; n];
        let mut per_job = vec![0u64; n];
        for (ji, job) in self.app.jobs().iter().enumerate() {
            let members = &self.job_members[ji];
            per_job.iter_mut().for_each(|v| *v = 0);
            // Traverse members in reverse id order: children have larger ids,
            // so this is a reverse topological order and each dataset's pulls
            // are final before its parents read them.
            let member_ids: Vec<usize> = members.iter().collect();
            for &xi in member_ids.iter().rev() {
                let x = DatasetId(xi as u32);
                let mut p: u64 = u64::from(job.target == x);
                for &c in &self.children[xi] {
                    if !members.contains(c.index()) {
                        continue;
                    }
                    let contribution = if cached.contains(&c) {
                        // A cached child materializes exactly once, in its
                        // first job; that one computation pulls each parent
                        // once per edge.
                        u64::from(self.first_job[c.index()] == Some(JobId(ji as u32)))
                    } else {
                        per_job[c.index()]
                    };
                    p = p.saturating_add(contribution);
                }
                per_job[xi] = p;
            }
            for xi in members.iter() {
                total[xi] = total[xi].saturating_add(per_job[xi]);
            }
        }
        total
    }

    /// Recursive upward chain cost (Eq. 4's `ET_i + Σ_parents ET_j`): the
    /// time to compute `d` once, including recomputing every *uncached*
    /// ancestor, counted with path multiplicity, cut at datasets in
    /// `cached`. `et` maps dataset index to its (measured) computation
    /// time.
    #[must_use]
    pub fn chain_cost(
        &self,
        d: DatasetId,
        cached: &BTreeSet<DatasetId>,
        et: &[Seconds],
    ) -> Seconds {
        // Memoized DFS over ancestors; ancestor ids are smaller than d's, so
        // a simple memo vector suffices.
        fn up(
            this: &LineageAnalysis<'_>,
            x: DatasetId,
            cached: &BTreeSet<DatasetId>,
            et: &[Seconds],
            memo: &mut [Option<Seconds>],
        ) -> Seconds {
            if let Some(v) = memo[x.index()] {
                return v;
            }
            let mut cost = et.get(x.index()).copied().unwrap_or(0.0);
            for &p in &this.app.dataset(x).parents {
                if !cached.contains(&p) {
                    cost += up(this, p, cached, et, memo);
                }
            }
            memo[x.index()] = Some(cost);
            cost
        }
        let mut memo = vec![None; self.app.dataset_count()];
        up(self, d, cached, et, &mut memo)
    }

    /// Whether, in every job at or after `via`'s first materialization,
    /// every use of `from` flows through `via` — the paper's condition for
    /// unpersisting `from` right before caching `via` (§5.1): "a cached
    /// dataset is unpersisted only if the dataset that follows it in the
    /// SCHEDULE is its child in all remaining jobs".
    #[must_use]
    pub fn all_remaining_uses_pass_through(&self, from: DatasetId, via: DatasetId) -> bool {
        let Some(first) = self.first_job_of(via) else {
            return false;
        };
        for (ji, job) in self.app.jobs().iter().enumerate().skip(first.index()) {
            let members = &self.job_members[ji];
            if !members.contains(from.index()) {
                continue;
            }
            if !members.contains(via.index()) {
                // `from` is used by a job that does not even contain `via`.
                return false;
            }
            if self.paths_avoiding(from, job.target, via, members) > 0 {
                return false;
            }
        }
        true
    }

    /// Number of downward paths from `from` to `to` that avoid `blocked`,
    /// restricted to `members`. Saturating.
    fn paths_avoiding(
        &self,
        from: DatasetId,
        to: DatasetId,
        blocked: DatasetId,
        members: &BitSet,
    ) -> u64 {
        if from == blocked {
            return 0;
        }
        if from == to {
            return 1;
        }
        let mut memo: Vec<Option<u64>> = vec![None; self.app.dataset_count()];
        fn walk(
            this: &LineageAnalysis<'_>,
            x: DatasetId,
            to: DatasetId,
            blocked: DatasetId,
            members: &BitSet,
            memo: &mut [Option<u64>],
        ) -> u64 {
            if x == blocked {
                return 0;
            }
            if x == to {
                return 1;
            }
            if let Some(v) = memo[x.index()] {
                return v;
            }
            let mut total: u64 = 0;
            for &c in &this.children[x.index()] {
                if members.contains(c.index()) {
                    total = total.saturating_add(walk(this, c, to, blocked, members, memo));
                }
            }
            memo[x.index()] = Some(total);
            total
        }
        walk(self, from, to, blocked, members, &mut memo)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::builder::AppBuilder;
    use crate::dataset::ComputeCost;
    use crate::ops::{NarrowKind, SourceFormat, WideKind};

    /// The merged LOR DAG of the paper's Figure 4, with job structure chosen
    /// so that n(D0) = n(D1) = 8, n(D2) = 6, n(D11) = 4 (§3.1) and the
    /// unpersist relationships of §5.1 hold.
    ///
    /// Jobs: 0 = count over a D1-descendant (avoids D2); 1 = count over a
    /// D2-descendant; 2 = sample-check over another D2-descendant; 3-6 =
    /// four iterative jobs via D11 (gradient per iteration); 7 = summary
    /// over a D1-descendant (avoids D2 and D11).
    pub(crate) fn lor_like() -> (Application, Vec<f64>) {
        let mb = |x: f64| (x * 1_000_000.0) as u64;
        let mut b = AppBuilder::new("lor-fig4");
        let d0 = b.source("input", SourceFormat::DistributedFs, 70_000, mb(76.351), 8);
        let d1 = b.narrow(
            "parsed",
            NarrowKind::Map,
            &[d0],
            70_000,
            mb(76.347),
            ComputeCost::FREE,
        );
        let d2 = b.narrow(
            "points",
            NarrowKind::Map,
            &[d1],
            70_000,
            mb(45.961),
            ComputeCost::FREE,
        );
        // Job 0: count on a view of D1.
        let v0 = b.narrow("check", NarrowKind::Map, &[d1], 1, 8, ComputeCost::FREE);
        b.job("count", v0);
        // Job 1 & 2: actions on views of D2.
        let v1 = b.narrow("stats", NarrowKind::Map, &[d2], 1, 8, ComputeCost::FREE);
        b.job("count", v1);
        let v2 = b.narrow(
            "sample",
            NarrowKind::Sample,
            &[d2],
            10,
            80,
            ComputeCost::FREE,
        );
        b.job("collect", v2);
        // D11: the per-iteration feature dataset, child of D2.
        let d11 = b.narrow(
            "features",
            NarrowKind::Map,
            &[d2],
            70_000,
            mb(45.975),
            ComputeCost::FREE,
        );
        // Jobs 3-6: iterative gradient jobs via D11.
        for i in 0..4 {
            let g = b.wide_with_partitions(
                format!("gradient[{i}]"),
                WideKind::TreeAggregate,
                &[d11],
                1,
                1024,
                1,
                ComputeCost::FREE,
            );
            b.job("treeAggregate", g);
        }
        // Job 7: summary over D1 only.
        let v7 = b.narrow("summary", NarrowKind::Map, &[d1], 1, 8, ComputeCost::FREE);
        b.job("collect", v7);
        let app = b.build().unwrap();
        // Measured transformation times from the paper's tables, in ms.
        let mut et = vec![0.0; app.dataset_count()];
        et[d0.index()] = 2700.0;
        et[d1.index()] = 10.0;
        et[d2.index()] = 14.0;
        et[d11.index()] = 40.0;
        (app, et)
    }

    const D0: DatasetId = DatasetId(0);
    const D1: DatasetId = DatasetId(1);
    const D2: DatasetId = DatasetId(2);
    const D11: DatasetId = DatasetId(6);

    #[test]
    fn figure4_computation_counts() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(n[D0.index()], 8, "n(D0)");
        assert_eq!(n[D1.index()], 8, "n(D1)");
        assert_eq!(n[D2.index()], 6, "n(D2)");
        assert_eq!(n[D11.index()], 4, "n(D11)");
    }

    #[test]
    fn figure4_intermediates() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        let mut inter = la.intermediates();
        inter.sort();
        assert_eq!(inter, vec![D0, D1, D2, D11]);
    }

    /// §5.1 second table: after caching D2, "#Calls" become D0: 3, D1: 3,
    /// D11: 4.
    #[test]
    fn pulls_after_caching_d2() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        let cached = BTreeSet::from([D2]);
        let p = la.pulls(&cached);
        assert_eq!(p[D0.index()], 3);
        assert_eq!(p[D1.index()], 3);
        assert_eq!(p[D11.index()], 4);
    }

    /// §5.1 third table: after caching D1 (re-evaluation), D2 stays at 6,
    /// D11 at 4, and D0 drops to a single materialization pull.
    #[test]
    fn pulls_after_caching_d1() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        let cached = BTreeSet::from([D1]);
        let p = la.pulls(&cached);
        assert_eq!(p[D0.index()], 1, "D0 only feeds D1's one materialization");
        assert_eq!(p[D2.index()], 6);
        assert_eq!(p[D11.index()], 4);
    }

    /// Benefit chain costs from §5.1: caching D11 saves 2700+10+14+40 per
    /// recomputation; with D2 cached, only its own 40.
    #[test]
    fn chain_costs_match_example() {
        let (app, et) = lor_like();
        let la = LineageAnalysis::new(&app);
        let none = BTreeSet::new();
        assert!((la.chain_cost(D11, &none, &et) - 2764.0).abs() < 1e-9);
        let with_d2 = BTreeSet::from([D2]);
        assert!((la.chain_cost(D11, &with_d2, &et) - 40.0).abs() < 1e-9);
        let with_d1 = BTreeSet::from([D1]);
        assert!((la.chain_cost(D2, &with_d1, &et) - 14.0).abs() < 1e-9);
        assert!((la.chain_cost(D11, &with_d1, &et) - 54.0).abs() < 1e-9);
    }

    /// §5.1: D2 may be unpersisted before caching D11 (all remaining uses of
    /// D2 flow through D11), but D1 may not (the final job uses D1 via a DAG
    /// that avoids D11).
    #[test]
    fn unpersist_conditions_match_paper() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        assert!(la.all_remaining_uses_pass_through(D2, D11));
        assert!(!la.all_remaining_uses_pass_through(D1, D11));
        // And D1's uses do all pass through... nothing: D1 has non-D2 uses.
        assert!(!la.all_remaining_uses_pass_through(D1, D2));
    }

    #[test]
    fn descendant_and_single_child_relations() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        assert!(la.is_descendant(D11, D0));
        assert!(la.is_descendant(D2, D1));
        assert!(!la.is_descendant(D1, D2));
        assert!(!la.is_descendant(D1, D1));
        // D1 is D0's only child.
        let with_d0 = BTreeSet::from([D0]);
        assert!(la.is_single_child_of_any(D1, &with_d0));
        // D2 is not D1's only child (the job-0 check view also hangs off D1).
        let with_d1 = BTreeSet::from([D1]);
        assert!(!la.is_single_child_of_any(D2, &with_d1));
    }

    #[test]
    fn first_job_indices() {
        let (app, _) = lor_like();
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.first_job_of(D0), Some(JobId(0)));
        assert_eq!(la.first_job_of(D2), Some(JobId(1)));
        assert_eq!(la.first_job_of(D11), Some(JobId(3)));
    }

    /// A diamond: shared ancestor is counted with path multiplicity, like
    /// Spark's recursive, memo-free partition computation.
    #[test]
    fn diamond_counts_with_multiplicity() {
        let mut b = AppBuilder::new("diamond");
        let s = b.source("s", SourceFormat::Generated, 10, 10, 1);
        let l = b.narrow("l", NarrowKind::Map, &[s], 10, 10, ComputeCost::FREE);
        let r = b.narrow("r", NarrowKind::Filter, &[s], 5, 5, ComputeCost::FREE);
        let j = b.narrow("j", NarrowKind::Zip, &[l, r], 5, 5, ComputeCost::FREE);
        b.job("count", j);
        let app = b.build().unwrap();
        let la = LineageAnalysis::new(&app);
        let n = la.computation_counts();
        assert_eq!(n[s.index()], 2, "source feeds both branches");
        assert_eq!(n[l.index()], 1);
        assert_eq!(n[j.index()], 1);
        // Chain cost counts the shared source twice.
        let mut et = vec![0.0; app.dataset_count()];
        et[s.index()] = 5.0;
        et[l.index()] = 1.0;
        et[r.index()] = 1.0;
        et[j.index()] = 1.0;
        let cost = la.chain_cost(j, &BTreeSet::new(), &et);
        assert!((cost - (1.0 + 1.0 + 1.0 + 5.0 + 5.0)).abs() < 1e-12);
    }

    #[test]
    fn dataset_outside_all_jobs_has_zero_count() {
        let mut b = AppBuilder::new("dead");
        let s = b.source("s", SourceFormat::Generated, 1, 1, 1);
        let live = b.narrow("live", NarrowKind::Map, &[s], 1, 1, ComputeCost::FREE);
        let _dead = b.narrow("dead", NarrowKind::Map, &[s], 1, 1, ComputeCost::FREE);
        b.job("count", live);
        let app = b.build().unwrap();
        let la = LineageAnalysis::new(&app);
        assert_eq!(la.computation_counts()[2], 0);
        assert_eq!(la.first_job_of(DatasetId(2)), None);
    }
}
