//! Splitting a job's DAG into stages at shuffle boundaries, as Spark's
//! `DAGScheduler` does (paper §2.1).
//!
//! Each *stage* pipelines a group of narrow transformations. A wide
//! transformation `W` materializes at the *start* of the stage that reads
//! the shuffle (Shuffle Read), while its parents are computed by separate
//! *map stages* that end with Shuffle Write — Juggler's §3.3 treats a wide
//! transformation as exactly this pair of narrow halves.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

use crate::app::{Application, JobId};
use crate::dataset::DatasetId;

/// Identifier of a stage within one job's [`StagePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StageId(pub u32);

impl StageId {
    /// The id as a usize index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage#{}", self.0)
    }
}

/// One stage: a pipelined group of transformations executed as `num_tasks`
/// parallel tasks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Stage id within the job's plan (also its index).
    pub id: StageId,
    /// Datasets computed by this stage, in ascending id (topological) order.
    /// If the first dataset is wide, the stage begins with a Shuffle Read.
    pub datasets: Vec<DatasetId>,
    /// The last dataset the stage produces. For map stages this is the
    /// dataset whose bytes are shuffle-written; for the result stage it is
    /// the job target.
    pub output: DatasetId,
    /// Stages whose shuffle output this stage consumes.
    pub parents: Vec<StageId>,
    /// Parallel tasks (= partitions of `output`).
    pub num_tasks: u32,
}

impl Stage {
    /// Wide datasets materialized at the start of this stage (shuffle
    /// reads), in id order.
    pub fn shuffle_reads<'a>(
        &'a self,
        app: &'a Application,
    ) -> impl Iterator<Item = DatasetId> + 'a {
        self.datasets
            .iter()
            .copied()
            .filter(|&d| app.dataset(d).op.is_wide())
    }
}

/// The stage DAG of one job, topologically ordered (parents before
/// children); the last stage is the result stage producing the job target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StagePlan {
    /// The job this plan belongs to.
    pub job: JobId,
    /// Stages in execution (topological) order.
    pub stages: Vec<Stage>,
}

impl StagePlan {
    /// Builds the stage plan for `job` of `app`.
    ///
    /// # Panics
    /// Panics if the job id is out of range (validated applications never
    /// hand one out).
    #[must_use]
    pub fn build(app: &Application, job: JobId) -> Self {
        let target = app.job(job).target;
        let mut stages: Vec<Stage> = Vec::new();
        // Map stages are shared: two wide consumers of the same parent read
        // the same shuffle files, so memoize by stage root.
        let mut memo: HashMap<DatasetId, StageId> = HashMap::new();
        build_stage(app, target, &mut stages, &mut memo);
        let mut plan = StagePlan { job, stages };
        // `build_stage` emits in post-order (parents first); re-number ids to
        // match positions.
        for (i, s) in plan.stages.iter_mut().enumerate() {
            debug_assert_eq!(s.id.index(), i);
        }
        plan
    }

    /// The stage producing the job target.
    #[must_use]
    pub fn result_stage(&self) -> &Stage {
        self.stages.last().expect("plans always have >= 1 stage")
    }

    /// Total number of tasks across all stages.
    #[must_use]
    pub fn total_tasks(&self) -> u64 {
        self.stages.iter().map(|s| u64::from(s.num_tasks)).sum()
    }
}

/// Recursively builds the stage rooted at `root` (the stage's output
/// dataset), emitting parent stages first, and returns its id.
fn build_stage(
    app: &Application,
    root: DatasetId,
    stages: &mut Vec<Stage>,
    memo: &mut HashMap<DatasetId, StageId>,
) -> StageId {
    if let Some(&sid) = memo.get(&root) {
        return sid;
    }
    // Gather the pipelined group: walk parents from the root, stopping the
    // upward walk at wide datasets (they belong to this stage as shuffle
    // reads, but their parents are computed by map stages).
    let mut members: Vec<DatasetId> = Vec::new();
    let mut parent_roots: Vec<DatasetId> = Vec::new();
    let mut stack = vec![root];
    let mut seen = crate::bitset::BitSet::new(app.dataset_count());
    while let Some(x) = stack.pop() {
        if !seen.insert(x.index()) {
            continue;
        }
        members.push(x);
        let d = app.dataset(x);
        if d.op.is_wide() {
            // Shuffle read: each parent is the output of a map stage.
            parent_roots.extend(d.parents.iter().copied());
        } else {
            stack.extend(d.parents.iter().copied());
        }
    }
    members.sort_unstable();
    parent_roots.sort_unstable();
    parent_roots.dedup();

    let parents: Vec<StageId> = parent_roots
        .into_iter()
        .map(|p| build_stage(app, p, stages, memo))
        .collect();

    let id = StageId(stages.len() as u32);
    stages.push(Stage {
        id,
        num_tasks: app.dataset(root).partitions,
        datasets: members,
        output: root,
        parents,
    });
    memo.insert(root, id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AppBuilder;
    use crate::dataset::ComputeCost;
    use crate::ops::{NarrowKind, SourceFormat, WideKind};

    /// input -> map -> treeAggregate -> (narrow) summary, one job: expect two
    /// stages, split at the aggregate.
    #[test]
    fn two_stage_pipeline() {
        let mut b = AppBuilder::new("p");
        let s = b.source("in", SourceFormat::DistributedFs, 1000, 10_000, 8);
        let m = b.narrow("m", NarrowKind::Map, &[s], 1000, 10_000, ComputeCost::FREE);
        let agg = b.wide_with_partitions(
            "agg",
            WideKind::TreeAggregate,
            &[m],
            1,
            64,
            1,
            ComputeCost::FREE,
        );
        let out = b.narrow("out", NarrowKind::Map, &[agg], 1, 64, ComputeCost::FREE);
        b.job("collect", out);
        let app = b.build().unwrap();
        let plan = StagePlan::build(&app, JobId(0));
        assert_eq!(plan.stages.len(), 2);
        let map_stage = &plan.stages[0];
        assert_eq!(map_stage.datasets, vec![s, m]);
        assert_eq!(map_stage.output, m);
        assert_eq!(map_stage.num_tasks, 8);
        assert!(map_stage.parents.is_empty());
        let result = plan.result_stage();
        assert_eq!(result.datasets, vec![agg, out]);
        assert_eq!(result.output, out);
        assert_eq!(result.num_tasks, 1);
        assert_eq!(result.parents, vec![StageId(0)]);
        assert_eq!(result.shuffle_reads(&app).collect::<Vec<_>>(), vec![agg]);
        assert_eq!(plan.total_tasks(), 9);
    }

    /// A single all-narrow job is one stage.
    #[test]
    fn narrow_only_job_is_single_stage() {
        let mut b = AppBuilder::new("n");
        let s = b.source("in", SourceFormat::DistributedFs, 10, 100, 4);
        let f = b.narrow("f", NarrowKind::Filter, &[s], 5, 50, ComputeCost::FREE);
        b.job("count", f);
        let app = b.build().unwrap();
        let plan = StagePlan::build(&app, JobId(0));
        assert_eq!(plan.stages.len(), 1);
        assert_eq!(plan.result_stage().datasets, vec![s, f]);
    }

    /// Join of two shuffled branches: three stages, result stage reads both.
    #[test]
    fn join_has_two_map_stages() {
        let mut b = AppBuilder::new("j");
        let a = b.source("a", SourceFormat::DistributedFs, 100, 1000, 4);
        let bsrc = b.source("b", SourceFormat::DistributedFs, 100, 1000, 4);
        let ra = b.wide(
            "ra",
            WideKind::ReduceByKey,
            &[a],
            50,
            500,
            ComputeCost::FREE,
        );
        let join = b.wide(
            "join",
            WideKind::Join,
            &[ra, bsrc],
            50,
            800,
            ComputeCost::FREE,
        );
        b.job("count", join);
        let app = b.build().unwrap();
        let plan = StagePlan::build(&app, JobId(0));
        // Stages: map(a), reduce stage producing ra as map output for join?
        // Walk: result stage rooted at `join` (wide) -> parents ra and bsrc.
        // ra is itself wide: its map stage is rooted at ra, which contains ra
        // only and has a parent stage rooted at a.
        assert_eq!(plan.stages.len(), 4);
        let result = plan.result_stage();
        assert_eq!(result.output, join);
        assert_eq!(result.parents.len(), 2);
        // Every parent id precedes the result stage (topological order).
        for s in &plan.stages {
            for p in &s.parents {
                assert!(p.index() < s.id.index());
            }
        }
    }

    /// Shared map stage: two wide consumers of the same parent share one map
    /// stage.
    #[test]
    fn shared_map_stage_is_memoized() {
        let mut b = AppBuilder::new("shared");
        let s = b.source("s", SourceFormat::DistributedFs, 100, 1000, 4);
        let w1 = b.wide(
            "w1",
            WideKind::ReduceByKey,
            &[s],
            10,
            100,
            ComputeCost::FREE,
        );
        let w2 = b.wide("w2", WideKind::GroupByKey, &[s], 10, 100, ComputeCost::FREE);
        let z = b.narrow("z", NarrowKind::Zip, &[w1, w2], 10, 200, ComputeCost::FREE);
        b.job("count", z);
        let app = b.build().unwrap();
        let plan = StagePlan::build(&app, JobId(0));
        // map(s) + result(w1, w2, z): the map stage is shared.
        assert_eq!(plan.stages.len(), 2);
        let result = plan.result_stage();
        assert_eq!(result.parents, vec![StageId(0)]);
        assert_eq!(result.datasets, vec![w1, w2, z]);
    }

    /// Stage ids equal their indices and the result stage is last — the
    /// invariant the simulator relies on.
    #[test]
    fn ids_match_positions() {
        let (app, _) = crate::analysis::tests::lor_like();
        for ji in 0..app.jobs().len() {
            let plan = StagePlan::build(&app, JobId(ji as u32));
            for (i, s) in plan.stages.iter().enumerate() {
                assert_eq!(s.id.index(), i);
            }
            assert_eq!(plan.result_stage().output, app.job(JobId(ji as u32)).target);
        }
    }
}
