//! Property-based tests of the numerical core: NNLS optimality conditions,
//! model-selection sanity, and experiment-design invariants.

use proptest::prelude::*;

use modeling::{d_optimal_greedy, fit_best, full_factorial, nnls, Matrix, ModelSpec, Sample};

fn design_matrix() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (2usize..8, 1usize..4).prop_flat_map(|(rows, cols)| {
        let cell = -100.0f64..100.0;
        (
            prop::collection::vec(
                prop::collection::vec(cell.clone(), cols..=cols),
                rows.max(cols)..=rows.max(cols) + 4,
            ),
            prop::collection::vec(-1000.0f64..1000.0, rows.max(cols)..=rows.max(cols) + 4),
        )
            .prop_map(|(m, y)| {
                let n = m.len().min(y.len());
                (m[..n].to_vec(), y[..n].to_vec())
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// NNLS never returns negative coefficients and never beats-worse the
    /// trivial zero solution.
    #[test]
    fn nnls_is_feasible_and_no_worse_than_zero((rows, y) in design_matrix()) {
        let a = Matrix::from_rows(&rows);
        let x = nnls(&a, &y);
        prop_assert!(x.iter().all(|&c| c >= 0.0 && c.is_finite()), "{x:?}");
        let res = |xv: &[f64]| -> f64 {
            a.matvec(xv).iter().zip(&y).map(|(p, t)| (p - t) * (p - t)).sum()
        };
        let zero = vec![0.0; a.cols()];
        prop_assert!(res(&x) <= res(&zero) + 1e-6 * (1.0 + res(&zero)));
    }

    /// For consistent non-negative systems, NNLS recovers the generator
    /// (well-conditioned diagonal-dominant case).
    #[test]
    fn nnls_recovers_nonnegative_truth(coeffs in prop::collection::vec(0.0f64..50.0, 1..4)) {
        let n = coeffs.len();
        // Identity-plus-extra-rows design: trivially well conditioned.
        let mut rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| f64::from(u8::from(i == j))).collect())
            .collect();
        rows.push(vec![1.0; n]);
        let a = Matrix::from_rows(&rows);
        let y = a.matvec(&coeffs);
        let x = nnls(&a, &y);
        for (got, want) in x.iter().zip(&coeffs) {
            prop_assert!((got - want).abs() < 1e-6, "{x:?} vs {coeffs:?}");
        }
    }

    /// fit_best always returns finite predictions and non-negative
    /// coefficients on positive responses.
    #[test]
    fn fit_best_is_stable(scale in 1.0f64..1e6, jitter in prop::collection::vec(0.9f64..1.1, 9)) {
        let mut samples = Vec::new();
        let mut k = 0;
        for &e in &[1.0e3, 5.0e3, 2.0e4] {
            for &f in &[2.0e3, 8.0e3, 3.0e4] {
                samples.push(Sample::ef(e, f, scale * (1.0 + 1e-6 * e * f) * jitter[k]));
                k += 1;
            }
        }
        let cv = fit_best(&ModelSpec::size_candidates(), &samples).expect("fits");
        prop_assert!(cv.model.coeffs.iter().all(|&c| c >= 0.0 && c.is_finite()));
        let pred = cv.model.predict(1.0e4, 1.0e4, 1.0);
        prop_assert!(pred.is_finite() && pred >= 0.0);
    }

    /// Full factorial size is the product of the axis lengths, and every
    /// combination is unique.
    #[test]
    fn full_factorial_product(axes in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 1..4), 0..4)) {
        let grid = full_factorial(&axes);
        let expect: usize = axes.iter().map(Vec::len).product();
        prop_assert_eq!(grid.len(), expect.max(1));
        for combo in &grid {
            prop_assert_eq!(combo.len(), axes.len());
        }
    }

    /// Greedy D-optimal selection returns k distinct, in-range indices.
    #[test]
    fn d_optimal_returns_distinct_indices(n in 2usize..20, k in 1usize..8) {
        prop_assume!(k <= n);
        let candidates: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![1.0, i as f64, (i as f64).sqrt()])
            .collect();
        let picks = d_optimal_greedy(&candidates, k);
        prop_assert_eq!(picks.len(), k);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "duplicates in {:?}", picks);
        prop_assert!(picks.iter().all(|&i| i < n));
    }
}
