//! Model families: linear combinations of monomial terms over the
//! application parameters `(e, f, i)` — examples, features, iterations.
//!
//! The paper's size-model families (§5.2):
//!
//! ```text
//! D_size = θ0·e·f
//! D_size = θ0·e + θ1·e·f
//! D_size = θ0·f + θ1·e·f
//! D_size = θ0 + θ1·e + θ2·e·f
//! ```
//!
//! and execution-time families (§5.4):
//!
//! ```text
//! T = θ0·e·f
//! T = θ0 + θ1·e·f
//! T = θ0·f + θ1·e·f
//! T = θ0·f² + θ1·e·f
//! ```
//!
//! Juggler "evaluates other models" too; [`ModelSpec::size_candidates`] and
//! [`ModelSpec::time_candidates`] return supersets, and cross-validation
//! picks the winner.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A monomial `e^a · f^b · i^c` over examples, features and iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Term {
    /// Exponent of `e` (examples).
    pub e_pow: u8,
    /// Exponent of `f` (features).
    pub f_pow: u8,
    /// Exponent of `i` (iterations).
    pub i_pow: u8,
}

impl Term {
    /// The constant term `1`.
    pub const ONE: Term = Term::new(0, 0, 0);
    /// `e`.
    pub const E: Term = Term::new(1, 0, 0);
    /// `f`.
    pub const F: Term = Term::new(0, 1, 0);
    /// `e·f`.
    pub const EF: Term = Term::new(1, 1, 0);
    /// `f²`.
    pub const F2: Term = Term::new(0, 2, 0);
    /// `e²`.
    pub const E2: Term = Term::new(2, 0, 0);
    /// `i` (iterations — §6.1 extension).
    pub const I: Term = Term::new(0, 0, 1);
    /// `e·f·i` (per-iteration scan work).
    pub const EFI: Term = Term::new(1, 1, 1);
    /// `f·i`.
    pub const FI: Term = Term::new(0, 1, 1);

    /// Builds a monomial from exponents.
    #[must_use]
    pub const fn new(e_pow: u8, f_pow: u8, i_pow: u8) -> Self {
        Term {
            e_pow,
            f_pow,
            i_pow,
        }
    }

    /// Evaluates the monomial at a parameter point.
    #[must_use]
    pub fn eval(&self, e: f64, f: f64, i: f64) -> f64 {
        e.powi(i32::from(self.e_pow))
            * f.powi(i32::from(self.f_pow))
            * i.powi(i32::from(self.i_pow))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Term::ONE {
            return write!(out, "1");
        }
        let mut first = true;
        for (sym, pow) in [("e", self.e_pow), ("f", self.f_pow), ("i", self.i_pow)] {
            if pow == 0 {
                continue;
            }
            if !first {
                write!(out, "·")?;
            }
            first = false;
            if pow == 1 {
                write!(out, "{sym}")?;
            } else {
                write!(out, "{sym}^{pow}")?;
            }
        }
        Ok(())
    }
}

/// An ordered list of terms; the fitted model is `Σ θ_k · term_k`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModelSpec {
    /// The monomial basis.
    pub terms: Vec<Term>,
}

impl ModelSpec {
    /// Builds a spec from terms.
    #[must_use]
    pub fn new(terms: Vec<Term>) -> Self {
        ModelSpec { terms }
    }

    /// Feature row for a parameter point.
    #[must_use]
    pub fn features(&self, e: f64, f: f64, i: f64) -> Vec<f64> {
        self.terms.iter().map(|t| t.eval(e, f, i)).collect()
    }

    /// The paper's four size-model families (§5.2) plus the extra shapes
    /// Juggler also evaluates.
    #[must_use]
    pub fn size_candidates() -> Vec<ModelSpec> {
        vec![
            // The four families every dataset in the paper fits:
            ModelSpec::new(vec![Term::EF]),
            ModelSpec::new(vec![Term::E, Term::EF]),
            ModelSpec::new(vec![Term::F, Term::EF]),
            ModelSpec::new(vec![Term::ONE, Term::E, Term::EF]),
            // Additional candidates ("Juggler evaluates other models"):
            ModelSpec::new(vec![Term::ONE]),
            ModelSpec::new(vec![Term::E]),
            ModelSpec::new(vec![Term::F]),
            ModelSpec::new(vec![Term::ONE, Term::E]),
            ModelSpec::new(vec![Term::ONE, Term::F]),
            ModelSpec::new(vec![Term::ONE, Term::E, Term::F, Term::EF]),
        ]
    }

    /// The paper's four execution-time families (§5.4) plus extras.
    #[must_use]
    pub fn time_candidates() -> Vec<ModelSpec> {
        vec![
            ModelSpec::new(vec![Term::EF]),
            ModelSpec::new(vec![Term::ONE, Term::EF]),
            ModelSpec::new(vec![Term::F, Term::EF]),
            ModelSpec::new(vec![Term::F2, Term::EF]),
            // Extras:
            ModelSpec::new(vec![Term::ONE, Term::E, Term::EF]),
            ModelSpec::new(vec![Term::ONE, Term::F, Term::EF]),
            ModelSpec::new(vec![Term::ONE, Term::E, Term::F, Term::EF]),
        ]
    }

    /// Time families extended with the number of iterations (§6.1).
    #[must_use]
    pub fn time_candidates_with_iterations() -> Vec<ModelSpec> {
        vec![
            ModelSpec::new(vec![Term::EFI]),
            ModelSpec::new(vec![Term::ONE, Term::EFI]),
            ModelSpec::new(vec![Term::I, Term::EFI]),
            ModelSpec::new(vec![Term::ONE, Term::I, Term::EFI]),
            ModelSpec::new(vec![Term::FI, Term::EFI]),
            ModelSpec::new(vec![Term::ONE, Term::EF, Term::EFI]),
        ]
    }

    /// Human-readable formula like `θ0·e + θ1·e·f`.
    #[must_use]
    pub fn formula(&self) -> String {
        if self.terms.is_empty() {
            return "0".to_owned();
        }
        self.terms
            .iter()
            .enumerate()
            .map(|(k, t)| {
                if *t == Term::ONE {
                    format!("θ{k}")
                } else {
                    format!("θ{k}·{t}")
                }
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.formula())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_eval() {
        assert_eq!(Term::ONE.eval(5.0, 7.0, 3.0), 1.0);
        assert_eq!(Term::EF.eval(5.0, 7.0, 3.0), 35.0);
        assert_eq!(Term::F2.eval(5.0, 7.0, 3.0), 49.0);
        assert_eq!(Term::EFI.eval(5.0, 7.0, 3.0), 105.0);
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::ONE.to_string(), "1");
        assert_eq!(Term::EF.to_string(), "e·f");
        assert_eq!(Term::F2.to_string(), "f^2");
        assert_eq!(Term::new(2, 1, 1).to_string(), "e^2·f·i");
    }

    #[test]
    fn spec_features_row() {
        let spec = ModelSpec::new(vec![Term::ONE, Term::E, Term::EF]);
        assert_eq!(spec.features(10.0, 3.0, 1.0), vec![1.0, 10.0, 30.0]);
    }

    #[test]
    fn paper_families_present() {
        let sizes = ModelSpec::size_candidates();
        assert!(sizes.contains(&ModelSpec::new(vec![Term::EF])));
        assert!(sizes.contains(&ModelSpec::new(vec![Term::E, Term::EF])));
        assert!(sizes.contains(&ModelSpec::new(vec![Term::F, Term::EF])));
        assert!(sizes.contains(&ModelSpec::new(vec![Term::ONE, Term::E, Term::EF])));
        let times = ModelSpec::time_candidates();
        assert!(times.contains(&ModelSpec::new(vec![Term::F2, Term::EF])));
    }

    #[test]
    fn formula_rendering() {
        let spec = ModelSpec::new(vec![Term::ONE, Term::E, Term::EF]);
        assert_eq!(spec.formula(), "θ0 + θ1·e + θ2·e·f");
        assert_eq!(ModelSpec::new(vec![]).formula(), "0");
    }
}
