//! Error and accuracy metrics used across the calibration stages and the
//! evaluation harness.

/// Mean relative absolute error `mean(|pred − actual| / |actual|)` over
/// paired slices. Pairs with `|actual|` below `1e-12` fall back to absolute
/// error so a zero ground truth does not blow up the mean.
///
/// # Panics
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn mean_relative_error(pred: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(pred.len(), actual.len(), "paired slices required");
    assert!(!pred.is_empty(), "cannot average zero errors");
    let total: f64 = pred
        .iter()
        .zip(actual)
        .map(|(&p, &a)| {
            if a.abs() < 1e-12 {
                (p - a).abs()
            } else {
                ((p - a) / a).abs()
            }
        })
        .sum();
    total / pred.len() as f64
}

/// The paper's prediction-accuracy measure, as a percentage:
/// `100 · (1 − |pred − actual| / actual)`, clamped to `[0, 100]`.
#[must_use]
pub fn accuracy_pct(pred: f64, actual: f64) -> f64 {
    if actual.abs() < 1e-12 {
        return if pred.abs() < 1e-12 { 100.0 } else { 0.0 };
    }
    (100.0 * (1.0 - ((pred - actual) / actual).abs())).clamp(0.0, 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_full_accuracy() {
        assert_eq!(accuracy_pct(10.0, 10.0), 100.0);
        assert_eq!(mean_relative_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn accuracy_clamps_at_zero() {
        assert_eq!(accuracy_pct(30.0, 10.0), 0.0);
        assert_eq!(accuracy_pct(0.0, 0.0), 100.0);
        assert_eq!(accuracy_pct(5.0, 0.0), 0.0);
    }

    #[test]
    fn ten_percent_error_is_ninety_accuracy() {
        assert!((accuracy_pct(9.0, 10.0) - 90.0).abs() < 1e-12);
        assert!((accuracy_pct(11.0, 10.0) - 90.0).abs() < 1e-12);
    }

    #[test]
    fn mean_relative_error_mixes_pairs() {
        let e = mean_relative_error(&[11.0, 18.0], &[10.0, 20.0]);
        assert!((e - (0.1 + 0.1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_actual_falls_back_to_absolute() {
        let e = mean_relative_error(&[0.5], &[0.0]);
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero errors")]
    fn empty_input_panics() {
        let _ = mean_relative_error(&[], &[]);
    }
}
