#![warn(missing_docs)]
//! # modeling — model fitting for Juggler's calibration stages
//!
//! Juggler fits two families of linear-in-coefficients models (paper §5.2,
//! §5.4): dataset-size models and execution-time models over application
//! parameters *e* (examples) and *f* (features), extended with *i*
//! (iterations) for the §6.1 discussion. Fitting mirrors the paper's use of
//! scipy's `curve_fit` with enforced positive bounds: we implement
//! non-negative least squares (Lawson–Hanson), plus ordinary least squares
//! via Householder QR for the unconstrained cases, leave-one-out
//! cross-validation for model selection, and the experiment-design helpers
//! (full-factorial grids for Juggler, greedy D-optimal selection for
//! Ernest's optimal experiment design).
//!
//! Everything here is dependency-free numerics over `f64`, sized for the
//! small design matrices these stages produce (tens of rows, at most a
//! handful of columns).

pub mod design;
pub mod families;
pub mod fit;
pub mod linalg;
pub mod metrics;
pub mod nnls;

pub use design::{d_optimal_greedy, full_factorial};
pub use families::{ModelSpec, Term};
pub use fit::{
    fit_best, fit_best_with_report, fit_spec, loocv_residuals, CandidateScore, CrossValidated,
    FitError, FitReport, FittedModel, ModelSummary, Sample,
};
pub use linalg::Matrix;
pub use metrics::{accuracy_pct, mean_relative_error};
pub use nnls::{nnls, nnls_with_stats};
