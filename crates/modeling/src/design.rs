//! Experiment design: full-factorial grids (Juggler's parameter and
//! execution-time calibration, §5.2/§5.4) and greedy D-optimal selection
//! (Ernest's *optimal experiment design* [Pukelsheim 2006], §7.3).

use crate::linalg::Matrix;

/// All combinations of the given per-parameter level arrays, in
/// lexicographic order — the `n^m` full-factorial design of §5.2.
///
/// With no parameters the result is a single empty combination.
#[must_use]
pub fn full_factorial(levels: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let mut combos: Vec<Vec<f64>> = vec![Vec::new()];
    for axis in levels {
        let mut next = Vec::with_capacity(combos.len() * axis.len());
        for combo in &combos {
            for &v in axis {
                let mut c = combo.clone();
                c.push(v);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Greedy D-optimal design: from `candidates` (feature rows), pick `k` rows
/// maximizing `log det(XᵀX + ridge·I)` one row at a time. Returns the chosen
/// candidate indices in selection order.
///
/// This approximates the convex experiment-design program Ernest solves; the
/// greedy variant is standard, deterministic and more than adequate for the
/// dozen-point candidate grids used in the evaluation.
///
/// # Panics
/// Panics if `k` exceeds the number of candidates or candidates is empty.
#[must_use]
pub fn d_optimal_greedy(candidates: &[Vec<f64>], k: usize) -> Vec<usize> {
    assert!(!candidates.is_empty(), "no candidate experiments");
    assert!(
        k <= candidates.len(),
        "cannot select more rows than candidates"
    );
    let ridge = 1e-6;
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(usize, f64)> = None;
        for (ci, cand) in candidates.iter().enumerate() {
            if chosen.contains(&ci) {
                continue;
            }
            rows.push(cand.clone());
            let obj = Matrix::from_rows(&rows).logdet_gram(ridge);
            rows.pop();
            let better = match best {
                None => true,
                Some((_, b)) => obj > b,
            };
            if better {
                best = Some((ci, obj));
            }
        }
        let (ci, _) = best.expect("k <= candidates guarantees a pick");
        chosen.push(ci);
        rows.push(candidates[ci].clone());
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_factorial_three_by_three() {
        let grid = full_factorial(&[vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 30.0]]);
        assert_eq!(grid.len(), 9);
        assert_eq!(grid[0], vec![1.0, 10.0]);
        assert_eq!(grid[8], vec![3.0, 30.0]);
        // All combinations are distinct.
        let mut sorted = grid.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn full_factorial_empty_axes() {
        assert_eq!(full_factorial(&[]), vec![Vec::<f64>::new()]);
    }

    #[test]
    fn full_factorial_single_axis() {
        let grid = full_factorial(&[vec![5.0, 6.0]]);
        assert_eq!(grid, vec![vec![5.0], vec![6.0]]);
    }

    #[test]
    fn d_optimal_prefers_spanning_points() {
        // Candidates on a line except one off-line point; with k=2 the
        // selector must include the off-line point to span the space.
        let candidates = vec![
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
            vec![1.0, -1.0],
        ];
        let picks = d_optimal_greedy(&candidates, 2);
        assert!(
            picks.contains(&3),
            "picks {picks:?} must span both dimensions"
        );
    }

    #[test]
    fn d_optimal_spreads_over_scale() {
        // Ernest-style candidates: rows [1, s/m, log m, m]; ensure the
        // selection spans small and large machine counts.
        let mut candidates = Vec::new();
        for m in 1..=12u32 {
            let mf = f64::from(m);
            candidates.push(vec![1.0, 0.1 / mf, mf.ln(), mf]);
        }
        let picks = d_optimal_greedy(&candidates, 7);
        let min = picks.iter().min().unwrap();
        let max = picks.iter().max().unwrap();
        assert!(*min <= 1, "should include a small cluster: {picks:?}");
        assert!(*max >= 10, "should include a large cluster: {picks:?}");
        assert_eq!(picks.len(), 7);
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 7, "no repeats");
    }

    #[test]
    #[should_panic(expected = "more rows than candidates")]
    fn d_optimal_rejects_oversized_k() {
        let _ = d_optimal_greedy(&[vec![1.0]], 2);
    }
}
