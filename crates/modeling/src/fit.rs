//! Fitting a model spec to samples, leave-one-out cross-validation, and
//! best-model selection — the §5.2/§5.4 training procedure:
//!
//! 1. run the full-factorial experiments;
//! 2. for each candidate model, hold out each point in turn, fit on the
//!    rest, and average the errors;
//! 3. select the candidate with the least cross-validation error and refit
//!    it on all points with non-negative coefficients.

use serde::{Deserialize, Serialize};

use crate::families::ModelSpec;
use crate::linalg::Matrix;
use crate::nnls::nnls;

/// One training observation: parameter point `(e, f, i)` and the measured
/// response (dataset size or execution time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Examples parameter.
    pub e: f64,
    /// Features parameter.
    pub f: f64,
    /// Iterations parameter (set to 1.0 when unused).
    pub i: f64,
    /// Measured response.
    pub y: f64,
}

impl Sample {
    /// Convenience constructor for two-parameter samples (i = 1).
    #[must_use]
    pub fn ef(e: f64, f: f64, y: f64) -> Self {
        Sample { e, f, i: 1.0, y }
    }
}

/// Errors from the fitting pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// No samples were provided.
    NoSamples,
    /// No candidate model specs were provided.
    NoCandidates,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NoSamples => write!(f, "no training samples"),
            FitError::NoCandidates => write!(f, "no candidate model specs"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted model: spec plus non-negative coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedModel {
    /// The monomial basis.
    pub spec: ModelSpec,
    /// Coefficients θ, non-negative, aligned with `spec.terms`.
    pub coeffs: Vec<f64>,
}

impl FittedModel {
    /// Predicts the response at a parameter point.
    #[must_use]
    pub fn predict(&self, e: f64, f: f64, i: f64) -> f64 {
        self.spec
            .features(e, f, i)
            .iter()
            .zip(&self.coeffs)
            .map(|(x, t)| x * t)
            .sum()
    }

    /// Renders the model with its coefficients at 4 significant figures
    /// (`%.4g` style), e.g. `1200 + 4.5·e·f`. Small coefficients switch
    /// to scientific notation instead of rounding away to `0.000`.
    #[must_use]
    pub fn render(&self) -> String {
        if self.spec.terms.is_empty() {
            return "0".to_owned();
        }
        self.spec
            .terms
            .iter()
            .zip(&self.coeffs)
            .map(|(t, c)| {
                let c = obs::fmt_sig(*c, 4);
                if *t == crate::families::Term::ONE {
                    c
                } else {
                    format!("{c}·{t}")
                }
            })
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// Serialization-friendly précis of one model selection: the winning
/// spec in formula notation (`1 + e·f`), the raw coefficient vector
/// aligned with the spec's terms, and the LOO-CV error. This is the
/// provenance surface — run manifests record it verbatim so cross-run
/// diffs can compare winners and coefficients without carrying a whole
/// [`FitReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSummary {
    /// The winning spec's formula (see [`ModelSpec::formula`]).
    pub spec: String,
    /// Fitted coefficients θ, aligned with the spec's terms.
    pub coeffs: Vec<f64>,
    /// Mean leave-one-out relative error of the winner.
    pub cv_error: f64,
}

impl ModelSummary {
    /// Summary of a fitted model with a known cross-validation error.
    #[must_use]
    pub fn of(model: &FittedModel, cv_error: f64) -> Self {
        ModelSummary {
            spec: model.spec.to_string(),
            coeffs: model.coeffs.clone(),
            cv_error,
        }
    }
}

/// A fitted model together with its cross-validation error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossValidated {
    /// The winning model refit on all samples.
    pub model: FittedModel,
    /// Mean leave-one-out relative error of the winning spec.
    pub cv_error: f64,
}

/// Fits a single spec on all samples with non-negative coefficients.
pub fn fit_spec(spec: &ModelSpec, samples: &[Sample]) -> Result<FittedModel, FitError> {
    if samples.is_empty() {
        return Err(FitError::NoSamples);
    }
    let rows: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| spec.features(s.e, s.f, s.i))
        .collect();
    let y: Vec<f64> = samples.iter().map(|s| s.y).collect();
    let coeffs = nnls(&Matrix::from_rows(&rows), &y);
    Ok(FittedModel {
        spec: spec.clone(),
        coeffs,
    })
}

/// Per-holdout leave-one-out relative errors of a spec, in sample order:
/// sample `k` of the result is the relative prediction error at sample `k`
/// when the model was fit on everything *but* sample `k`. Empty when the
/// spec is infeasible for the sample count (fewer than 2 samples, no
/// terms, or more coefficients than remaining samples).
#[must_use]
pub fn loocv_residuals(spec: &ModelSpec, samples: &[Sample]) -> Vec<f64> {
    let n = samples.len();
    if n < 2 || spec.terms.is_empty() || spec.terms.len() > n - 1 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    for hold in 0..n {
        let train: Vec<Sample> = samples
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != hold)
            .map(|(_, s)| *s)
            .collect();
        let Ok(model) = fit_spec(spec, &train) else {
            return Vec::new();
        };
        let s = samples[hold];
        let pred = model.predict(s.e, s.f, s.i);
        out.push(if s.y.abs() < 1e-12 {
            (pred - s.y).abs()
        } else {
            ((pred - s.y) / s.y).abs()
        });
    }
    out
}

/// Leave-one-out cross-validation error of a spec: each sample is held out
/// in turn, the model is fit on the rest, and the held-out relative errors
/// are averaged (paper §5.2). Specs with more coefficients than remaining
/// samples are penalized with infinite error.
#[must_use]
pub fn loocv_error(spec: &ModelSpec, samples: &[Sample]) -> f64 {
    let _prof = obs::prof::scope("loocv");
    let reg = obs::global();
    if reg.enabled() {
        reg.counter(
            "modeling_loocv_evaluations_total",
            "candidate specs scored by leave-one-out cross-validation",
        )
        .inc();
    }
    let residuals = loocv_residuals(spec, samples);
    if residuals.is_empty() {
        return f64::INFINITY;
    }
    residuals.iter().sum::<f64>() / residuals.len() as f64
}

/// One candidate's score in a [`FitReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateScore {
    /// The candidate spec.
    pub spec: ModelSpec,
    /// Its mean leave-one-out relative error (infinite when infeasible
    /// for the sample count).
    pub cv_error: f64,
    /// Whether model selection picked this candidate.
    pub selected: bool,
}

/// Model-quality diagnostics from one [`fit_best_with_report`] selection:
/// every candidate's cross-validation score, the winner refit on all
/// samples, and the winner's per-holdout residuals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitReport {
    /// All candidates in evaluation order, each with its LOO-CV error.
    pub candidates: Vec<CandidateScore>,
    /// The winning model refit on all samples.
    pub winner: FittedModel,
    /// Mean leave-one-out relative error of the winner.
    pub cv_error: f64,
    /// The winner's per-holdout relative errors, in sample order (see
    /// [`loocv_residuals`]); empty only when LOO-CV was infeasible.
    pub residuals: Vec<f64>,
}

impl FitReport {
    /// Mean holdout relative error (equals [`FitReport::cv_error`] when
    /// residuals are available).
    #[must_use]
    pub fn mean_residual(&self) -> f64 {
        if self.residuals.is_empty() {
            f64::INFINITY
        } else {
            self.residuals.iter().sum::<f64>() / self.residuals.len() as f64
        }
    }

    /// Worst holdout relative error.
    #[must_use]
    pub fn max_residual(&self) -> f64 {
        self.residuals
            .iter()
            .fold(f64::NEG_INFINITY, |m, &r| m.max(r))
    }

    /// The winner's [`ModelSummary`] — what run manifests record.
    #[must_use]
    pub fn summary(&self) -> ModelSummary {
        ModelSummary::of(&self.winner, self.cv_error)
    }

    /// The holdout residual series in fixed-point micro-units
    /// (`obs::health::MICRO`), in sample order — the seed the health
    /// watchtower warm-starts its EWMA residual bands from, so the first
    /// production runs are judged against the training-time error
    /// distribution instead of a cold band.
    #[must_use]
    pub fn residual_micro_series(&self) -> Vec<i64> {
        self.residuals.iter().map(|&r| obs::to_micro(r)).collect()
    }
}

/// Full model selection: cross-validate each candidate, pick the least
/// error, refit on all samples. Ties break toward fewer terms (the earlier,
/// simpler candidates in the lists from [`ModelSpec`]).
pub fn fit_best(candidates: &[ModelSpec], samples: &[Sample]) -> Result<CrossValidated, FitError> {
    fit_best_with_report(candidates, samples).map(|(cv, _)| cv)
}

/// [`fit_best`] plus a [`FitReport`] carrying per-candidate LOO-CV scores
/// and the winner's holdout residuals — the `juggler doctor` model-quality
/// surface.
pub fn fit_best_with_report(
    candidates: &[ModelSpec],
    samples: &[Sample],
) -> Result<(CrossValidated, FitReport), FitError> {
    if candidates.is_empty() {
        return Err(FitError::NoCandidates);
    }
    if samples.is_empty() {
        return Err(FitError::NoSamples);
    }
    let _prof = obs::prof::scope("fit");
    let mut scores = Vec::with_capacity(candidates.len());
    let mut best: Option<(f64, usize)> = None;
    for (k, spec) in candidates.iter().enumerate() {
        let err = loocv_error(spec, samples);
        let better = match best {
            None => true,
            Some((e, _)) => err < e - 1e-15,
        };
        if better {
            best = Some((err, k));
        }
        scores.push(CandidateScore {
            spec: spec.clone(),
            cv_error: err,
            selected: false,
        });
    }
    let (cv_error, kbest) = best.expect("candidates is non-empty");
    scores[kbest].selected = true;
    let model = fit_spec(&candidates[kbest], samples)?;
    let residuals = loocv_residuals(&candidates[kbest], samples);
    let report = FitReport {
        candidates: scores,
        winner: model.clone(),
        cv_error,
        residuals,
    };
    Ok((CrossValidated { model, cv_error }, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::Term;

    fn grid(ys: impl Fn(f64, f64) -> f64) -> Vec<Sample> {
        let es = [10_000.0, 40_000.0, 70_000.0];
        let fs = [20_000.0, 60_000.0, 120_000.0];
        let mut out = Vec::new();
        for &e in &es {
            for &f in &fs {
                out.push(Sample::ef(e, f, ys(e, f)));
            }
        }
        out
    }

    #[test]
    fn selects_pure_ef_model() {
        let samples = grid(|e, f| 0.016 * e * f);
        let cv = fit_best(&ModelSpec::size_candidates(), &samples).unwrap();
        assert!(cv.cv_error < 1e-9, "cv error {}", cv.cv_error);
        let pred = cv.model.predict(55_000.0, 90_000.0, 1.0);
        let truth = 0.016 * 55_000.0 * 90_000.0;
        assert!(((pred - truth) / truth).abs() < 1e-9);
    }

    #[test]
    fn selects_affine_e_ef_model() {
        let samples = grid(|e, f| 1.0e7 + 96.0 * e + 0.008 * e * f);
        let cv = fit_best(&ModelSpec::size_candidates(), &samples).unwrap();
        assert!(cv.cv_error < 1e-6, "cv error {}", cv.cv_error);
        let pred = cv.model.predict(30_000.0, 45_000.0, 1.0);
        let truth = 1.0e7 + 96.0 * 30_000.0 + 0.008 * 30_000.0 * 45_000.0;
        assert!(
            ((pred - truth) / truth).abs() < 1e-6,
            "pred {pred}, truth {truth}"
        );
    }

    #[test]
    fn selects_f2_time_model() {
        let samples = grid(|e, f| 2.0e-6 * f * f + 3.0e-5 * e * f);
        let cv = fit_best(&ModelSpec::time_candidates(), &samples).unwrap();
        assert_eq!(cv.model.spec, ModelSpec::new(vec![Term::F2, Term::EF]));
        assert!(cv.cv_error < 1e-9);
    }

    #[test]
    fn iteration_extended_family_recovers_i_term() {
        let mut samples = Vec::new();
        for &e in &[1.0e4, 5.0e4] {
            for &f in &[1.0e4, 8.0e4] {
                for &i in &[10.0, 50.0, 100.0] {
                    samples.push(Sample {
                        e,
                        f,
                        i,
                        y: 30.0 + 2.0e-7 * e * f * i,
                    });
                }
            }
        }
        let cv = fit_best(&ModelSpec::time_candidates_with_iterations(), &samples).unwrap();
        assert!(cv.cv_error < 1e-9, "cv error {}", cv.cv_error);
        let pred = cv.model.predict(3.0e4, 4.0e4, 70.0);
        let truth = 30.0 + 2.0e-7 * 3.0e4 * 4.0e4 * 70.0;
        assert!(((pred - truth) / truth).abs() < 1e-9);
    }

    #[test]
    fn report_scores_every_candidate_and_marks_one_winner() {
        let samples = grid(|e, f| 0.016 * e * f);
        let candidates = ModelSpec::size_candidates();
        let (cv, report) = fit_best_with_report(&candidates, &samples).unwrap();
        assert_eq!(report.candidates.len(), candidates.len());
        let selected: Vec<&CandidateScore> =
            report.candidates.iter().filter(|c| c.selected).collect();
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].spec, cv.model.spec);
        assert_eq!(selected[0].cv_error, cv.cv_error);
        assert_eq!(report.residuals.len(), samples.len());
        assert!((report.mean_residual() - cv.cv_error).abs() < 1e-15);
        assert!(report.max_residual() >= report.mean_residual());
        // Every other candidate scored no better than the winner.
        for c in &report.candidates {
            assert!(c.cv_error >= cv.cv_error - 1e-15, "{c:?}");
        }
    }

    #[test]
    fn summary_exposes_winner_spec_and_coefficients() {
        let samples = grid(|e, f| 0.016 * e * f);
        let (cv, report) = fit_best_with_report(&ModelSpec::size_candidates(), &samples).unwrap();
        let s = report.summary();
        assert_eq!(s.spec, cv.model.spec.to_string());
        assert_eq!(s.coeffs, cv.model.coeffs);
        assert_eq!(s.cv_error, cv.cv_error);
        assert!(s.spec.contains("e·f"), "{}", s.spec);
    }

    #[test]
    fn residuals_match_loocv_error() {
        let samples = grid(|e, f| 1.0e7 + 96.0 * e + 0.008 * e * f);
        let spec = ModelSpec::new(vec![Term::ONE, Term::E, Term::EF]);
        let residuals = loocv_residuals(&spec, &samples);
        assert_eq!(residuals.len(), samples.len());
        let mean = residuals.iter().sum::<f64>() / residuals.len() as f64;
        assert!((mean - loocv_error(&spec, &samples)).abs() < 1e-15);
    }

    #[test]
    fn loocv_penalizes_overparameterized_specs() {
        let samples = vec![Sample::ef(1.0, 1.0, 1.0), Sample::ef(2.0, 2.0, 2.0)];
        let big = ModelSpec::new(vec![Term::ONE, Term::E, Term::F, Term::EF]);
        assert_eq!(loocv_error(&big, &samples), f64::INFINITY);
    }

    #[test]
    fn fit_best_errors_on_empty_inputs() {
        assert!(matches!(
            fit_best(&[], &[Sample::ef(1.0, 1.0, 1.0)]),
            Err(FitError::NoCandidates)
        ));
        assert!(matches!(
            fit_best(&ModelSpec::size_candidates(), &[]),
            Err(FitError::NoSamples)
        ));
    }

    #[test]
    fn coefficients_are_nonnegative_even_for_decreasing_data() {
        // Response decreases in f; the best non-negative model must not
        // produce negative coefficients.
        let samples = grid(|e, f| 1.0e9 + 50.0 * e - 0.001 * f);
        let cv = fit_best(&ModelSpec::size_candidates(), &samples).unwrap();
        assert!(cv.model.coeffs.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn render_is_humane() {
        let m = FittedModel {
            spec: ModelSpec::new(vec![Term::ONE, Term::EF]),
            coeffs: vec![2.0, 0.5],
        };
        assert_eq!(m.render(), "2 + 0.5·e·f");
    }

    /// A coefficient like 3.2e-7 (typical for e·f·i time terms) must not
    /// render as zero.
    #[test]
    fn render_keeps_tiny_coefficients_visible() {
        let m = FittedModel {
            spec: ModelSpec::new(vec![Term::ONE, Term::EFI]),
            coeffs: vec![30.0, 3.2e-7],
        };
        assert_eq!(m.render(), "30 + 3.2e-7·e·f·i");
    }

    /// Noisy data: selection still lands on a model whose held-out error is
    /// small, reproducing the paper's ~0.9 % worst-case size error regime.
    #[test]
    fn tolerates_measurement_noise() {
        let mut k = 0u64;
        let mut noise = move || {
            // Tiny deterministic pseudo-noise in ±0.5 %.
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((k >> 33) as f64 / 2f64.powi(31) - 0.5) * 0.01
        };
        let samples: Vec<Sample> = grid(|e, f| 96.0 * e + 0.008 * e * f)
            .into_iter()
            .map(|mut s| {
                s.y *= 1.0 + noise();
                s
            })
            .collect();
        let cv = fit_best(&ModelSpec::size_candidates(), &samples).unwrap();
        assert!(cv.cv_error < 0.02, "cv error {}", cv.cv_error);
    }
}
