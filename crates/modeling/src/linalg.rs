//! Minimal dense matrix type and the two decompositions the fitting code
//! needs: Householder QR (least squares) and Cholesky (normal equations
//! inside NNLS).

use serde::{Deserialize, Serialize};

/// Row-major dense `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let ncols = rows.first().map_or(0, Vec::len);
        let mut m = Matrix::zeros(rows.len(), ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "ragged rows");
            m.data[i * ncols..(i + 1) * ncols].copy_from_slice(r);
        }
        m
    }

    /// Identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrowed row slice.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    #[must_use]
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "shape mismatch in matvec");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Least-squares solution of `self * x ≈ b` via Householder QR with
    /// column pivoting omitted (the design matrices here are tiny and well
    /// scaled after normalization). Rank-deficient columns get coefficient
    /// zero.
    ///
    /// Returns `None` if shapes mismatch or fewer rows than columns.
    #[must_use]
    pub fn solve_least_squares(&self, b: &[f64]) -> Option<Vec<f64>> {
        if b.len() != self.rows || self.rows < self.cols || self.cols == 0 {
            return None;
        }
        let m = self.rows;
        let n = self.cols;
        let mut a = self.data.clone();
        let mut y = b.to_vec();
        // Householder transformations, applied in place.
        for k in 0..n {
            // Norm of the k-th column below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                norm += a[i * n + k] * a[i * n + k];
            }
            let norm = norm.sqrt();
            if norm < 1e-300 {
                continue; // zero column: leave as-is; back-substitution zeroes it.
            }
            let alpha = if a[k * n + k] > 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            v[k] = a[k * n + k] - alpha;
            for (i, vi) in v.iter_mut().enumerate().take(m).skip(k + 1) {
                *vi = a[i * n + k];
            }
            let vtv: f64 = v[k..].iter().map(|x| x * x).sum();
            if vtv < 1e-300 {
                continue;
            }
            // Apply H = I - 2 v vᵀ / (vᵀv) to A[:, k..] and y.
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i] * a[i * n + j]).sum();
                let s = 2.0 * dot / vtv;
                for i in k..m {
                    a[i * n + j] -= s * v[i];
                }
            }
            let dot: f64 = (k..m).map(|i| v[i] * y[i]).sum();
            let s = 2.0 * dot / vtv;
            for i in k..m {
                y[i] -= s * v[i];
            }
        }
        // Back substitution on the upper-triangular R.
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut sum = y[k];
            for j in k + 1..n {
                sum -= a[k * n + j] * x[j];
            }
            let diag = a[k * n + k];
            x[k] = if diag.abs() < 1e-12 { 0.0 } else { sum / diag };
        }
        Some(x)
    }

    /// Solves the symmetric positive-definite system `self * x = b` via
    /// Cholesky. Returns `None` if the matrix is not (numerically) SPD.
    ///
    /// # Panics
    /// Panics if the matrix is not square or `b` has the wrong length.
    #[must_use]
    pub fn solve_spd(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve_spd needs a square matrix");
        assert_eq!(b.len(), self.rows);
        let n = self.rows;
        // Cholesky factor L (lower), row-major.
        let mut l = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // Forward substitution L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * z[k];
            }
            z[i] = sum / l[i * n + i];
        }
        // Backward substitution Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in i + 1..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Some(x)
    }

    /// `log(det(selfᵀ · self + ridge·I))` — the D-optimality objective used
    /// by the greedy experiment-design selector.
    ///
    /// # Panics
    /// Panics if `ridge < 0`.
    #[must_use]
    pub fn logdet_gram(&self, ridge: f64) -> f64 {
        assert!(ridge >= 0.0);
        let mut g = self.transpose().matmul(self);
        for i in 0..g.rows {
            g[(i, i)] += ridge;
        }
        // Cholesky log-det: 2 Σ log L_ii.
        let n = g.rows;
        let mut l = vec![0.0f64; n * n];
        let mut logdet = 0.0;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = g[(i, j)];
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 {
                        return f64::NEG_INFINITY;
                    }
                    l[i * n + j] = sum.sqrt();
                    logdet += 2.0 * l[i * n + j].ln();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        logdet
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.rows(), 2);
        assert_eq!(at.cols(), 3);
        let g = at.matmul(&a);
        assert_eq!(g[(0, 0)], 35.0);
        assert_eq!(g[(0, 1)], 44.0);
        assert_eq!(g[(1, 1)], 56.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0]]);
        assert_close(&a.matvec(&[2.0, 3.0]), &[-1.0, 7.0], 1e-12);
    }

    #[test]
    fn least_squares_exact_system() {
        // x = [2, -3] exactly.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let b = [2.0, -3.0, -1.0];
        let x = a.solve_least_squares(&b).unwrap();
        assert_close(&x, &[2.0, -3.0], 1e-10);
    }

    #[test]
    fn least_squares_overdetermined_regression() {
        // Fit y = 3 + 2 t on noisy-free points.
        let ts = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = ts.iter().map(|&t| vec![1.0, t]).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| 3.0 + 2.0 * t).collect();
        let x = Matrix::from_rows(&rows).solve_least_squares(&ys).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-10);
    }

    #[test]
    fn least_squares_rank_deficient_gives_zero_coeff() {
        // Second column is all zeros.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![2.0, 0.0], vec![3.0, 0.0]]);
        let b = [2.0, 4.0, 6.0];
        let x = a.solve_least_squares(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn least_squares_rejects_underdetermined() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        assert!(a.solve_least_squares(&[1.0]).is_none());
    }

    #[test]
    fn spd_solve_roundtrip() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve_spd(&[1.0, 2.0]).unwrap();
        let back = a.matvec(&x);
        assert_close(&back, &[1.0, 2.0], 1e-12);
    }

    #[test]
    fn spd_solve_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!(a.solve_spd(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn logdet_gram_of_identity() {
        let i3 = Matrix::identity(3);
        assert!((i3.logdet_gram(0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn logdet_gram_monotone_in_added_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        assert!(b.logdet_gram(1e-9) > a.logdet_gram(1e-9));
    }
}
