//! Non-negative least squares (Lawson–Hanson active-set algorithm).
//!
//! Juggler trains its size and time models with scipy's `curve_fit` under
//! "enforced positive bounds, which avoids negative coefficients" (§5.2).
//! For linear-in-coefficients models that is exactly the NNLS problem
//! `min ‖A·x − b‖₂ s.t. x ≥ 0`.

use crate::linalg::Matrix;

/// Solves `min ‖a·x − b‖₂` subject to `x ≥ 0` with Lawson–Hanson.
///
/// Returns the coefficient vector (length `a.cols()`). The algorithm always
/// terminates on finite inputs; an internal iteration cap (`30 · cols`)
/// guards against numerically degenerate cycling, returning the best iterate
/// found.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
#[must_use]
pub fn nnls(a: &Matrix, b: &[f64]) -> Vec<f64> {
    nnls_with_stats(a, b).0
}

/// [`nnls`] plus the number of Lawson–Hanson outer iterations the solve
/// took — the model-quality diagnostics surface this, and each solve also
/// feeds the `modeling_nnls_*` metrics when the global registry is
/// enabled.
///
/// # Panics
/// Panics if `b.len() != a.rows()`.
#[must_use]
pub fn nnls_with_stats(a: &Matrix, b: &[f64]) -> (Vec<f64>, u64) {
    assert_eq!(b.len(), a.rows(), "shape mismatch in nnls");
    let _prof = obs::prof::scope("nnls");
    // Columns of calibration design matrices span many orders of magnitude
    // (a constant term next to e·f ~ 1e10). Normalize each column to unit
    // norm so the Gram matrix stays well conditioned, then unscale the
    // coefficients at the end; non-negativity is preserved because the
    // scales are positive.
    let n = a.cols();
    let mut scales = vec![1.0f64; n];
    let mut scaled = a.clone();
    for j in 0..n {
        let norm = (0..a.rows())
            .map(|i| a[(i, j)] * a[(i, j)])
            .sum::<f64>()
            .sqrt();
        if norm > 1e-300 {
            scales[j] = norm;
            for i in 0..a.rows() {
                scaled[(i, j)] /= norm;
            }
        }
    }
    let (mut x, iterations) = nnls_normalized(&scaled, b);
    for j in 0..n {
        x[j] /= scales[j];
    }
    obs::prof::count("nnls_iterations", iterations);
    let reg = obs::global();
    if reg.enabled() {
        reg.counter("modeling_nnls_solves_total", "NNLS solves performed")
            .inc();
        reg.counter(
            "modeling_nnls_iterations_total",
            "Lawson-Hanson outer iterations across all solves",
        )
        .add(iterations);
        reg.histogram(
            "modeling_nnls_iterations",
            "Lawson-Hanson outer iterations per solve",
        )
        .record(iterations);
    }
    (x, iterations)
}

/// Lawson–Hanson on a column-normalized design matrix. Returns the
/// solution and the number of outer iterations executed.
fn nnls_normalized(a: &Matrix, b: &[f64]) -> (Vec<f64>, u64) {
    let n = a.cols();
    let at = a.transpose();
    let gram = at.matmul(a); // AᵀA, n×n
    let atb = at.matvec(b); // Aᵀb

    let mut x = vec![0.0f64; n];
    let mut passive = vec![false; n];
    let max_outer = 30 * n.max(1);

    // Solve the unconstrained problem restricted to the passive set.
    let solve_passive = |passive: &[bool]| -> Option<Vec<f64>> {
        let idx: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
        if idx.is_empty() {
            return Some(vec![0.0; n]);
        }
        let k = idx.len();
        let mut g = Matrix::zeros(k, k);
        let mut rhs = vec![0.0; k];
        for (r, &jr) in idx.iter().enumerate() {
            rhs[r] = atb[jr];
            for (c, &jc) in idx.iter().enumerate() {
                g[(r, c)] = gram[(jr, jc)];
            }
        }
        // Tiny ridge for numerical robustness on near-collinear terms.
        for r in 0..k {
            g[(r, r)] += 1e-12 * (1.0 + g[(r, r)].abs());
        }
        let z = g.solve_spd(&rhs)?;
        let mut full = vec![0.0; n];
        for (r, &j) in idx.iter().enumerate() {
            full[j] = z[r];
        }
        Some(full)
    };

    let mut iterations = 0u64;
    for _ in 0..max_outer {
        iterations += 1;
        // Gradient of ½‖Ax−b‖² is AᵀAx − Aᵀb; w = −gradient.
        let grad = gram.matvec(&x);
        let w: Vec<f64> = (0..n).map(|j| atb[j] - grad[j]).collect();

        // Pick the most violated inactive constraint.
        let candidate = (0..n)
            .filter(|&j| !passive[j])
            .max_by(|&i, &j| w[i].partial_cmp(&w[j]).expect("finite gradients"));
        let Some(jmax) = candidate else { break };
        let tol = 1e-10 * (1.0 + atb.iter().fold(0.0f64, |m, v| m.max(v.abs())));
        if w[jmax] <= tol {
            break; // KKT conditions met.
        }
        passive[jmax] = true;

        // Inner loop: retreat until the passive solution is feasible.
        loop {
            let Some(z) = solve_passive(&passive) else {
                // Singular restricted system: drop the newest variable.
                passive[jmax] = false;
                break;
            };
            let infeasible: Vec<usize> = (0..n).filter(|&j| passive[j] && z[j] <= 0.0).collect();
            if infeasible.is_empty() {
                x = z;
                break;
            }
            // Step from x toward z, stopping at the first boundary.
            let alpha = infeasible
                .iter()
                .map(|&j| x[j] / (x[j] - z[j]))
                .fold(f64::INFINITY, f64::min)
                .clamp(0.0, 1.0);
            for j in 0..n {
                if passive[j] {
                    x[j] += alpha * (z[j] - x[j]);
                    if x[j] <= 1e-14 {
                        x[j] = 0.0;
                        passive[j] = false;
                    }
                }
            }
        }
    }
    (x, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn unconstrained_optimum_already_nonnegative() {
        // y = 2 a + 3 b exactly; NNLS must find it.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ]);
        let b = [2.0, 3.0, 5.0, 7.0];
        let x = nnls(&a, &b);
        assert!((x[0] - 2.0).abs() < 1e-8, "{x:?}");
        assert!((x[1] - 3.0).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn clamps_negative_coefficient_to_zero() {
        // Unconstrained fit of y = -1·a would be negative; NNLS clamps.
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let b = [-1.0, -2.0, -3.0];
        let x = nnls(&a, &b);
        assert_eq!(x, vec![0.0]);
    }

    #[test]
    fn mixed_signs_projects_correctly() {
        // True model y = 4·a − 2·b. With b's coefficient clamped to 0, the
        // solution must be the best fit using `a` alone.
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![f64::from(i), f64::from(i % 3)])
            .collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = rows.iter().map(|r| 4.0 * r[0] - 2.0 * r[1]).collect();
        let x = nnls(&a, &b);
        assert!(x.iter().all(|&c| c >= 0.0));
        // Compare against the one-variable OLS optimum.
        let a1 = Matrix::from_rows(&rows.iter().map(|r| vec![r[0]]).collect::<Vec<_>>());
        let best1 = a1.solve_least_squares(&b).unwrap();
        let mut x_ref = vec![best1[0], 0.0];
        // NNLS may also keep b active at 0; residuals must match the
        // restricted optimum up to tolerance.
        let r_nnls = residual(&a, &x, &b);
        let r_ref = residual(&a, &x_ref, &b);
        assert!(r_nnls <= r_ref + 1e-8, "{r_nnls} vs {r_ref}");
        x_ref[1] = 0.0;
    }

    #[test]
    fn stats_report_outer_iterations() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let (x, iterations) = nnls_with_stats(&a, &[2.0, 3.0, 5.0]);
        assert!(iterations >= 2, "two variables enter the passive set");
        assert!((x[0] - 2.0).abs() < 1e-8, "{x:?}");
        assert!((x[1] - 3.0).abs() < 1e-8, "{x:?}");
    }

    #[test]
    fn zero_matrix_returns_zero() {
        let a = Matrix::zeros(3, 2);
        let x = nnls(&a, &[1.0, 2.0, 3.0]);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn recovers_paper_style_size_model() {
        // D_size = θ0·e + θ1·e·f with θ = (120, 8.5): the second size-model
        // family from §5.2.
        let grid = [
            (1000.0, 10.0),
            (1000.0, 50.0),
            (5000.0, 10.0),
            (5000.0, 50.0),
            (9000.0, 90.0),
        ];
        let rows: Vec<Vec<f64>> = grid.iter().map(|&(e, f)| vec![e, e * f]).collect();
        let y: Vec<f64> = grid.iter().map(|&(e, f)| 120.0 * e + 8.5 * e * f).collect();
        let x = nnls(&Matrix::from_rows(&rows), &y);
        assert!((x[0] - 120.0).abs() < 1e-4, "{x:?}");
        assert!((x[1] - 8.5).abs() < 1e-6, "{x:?}");
    }

    #[test]
    fn large_scale_features_stay_stable() {
        // e up to 1e5, f up to 1e5 — e·f ~ 1e10 as in real HiBench params.
        let grid = [
            (1.0e4, 1.0e4),
            (1.0e4, 1.2e5),
            (7.0e4, 1.0e4),
            (7.0e4, 1.2e5),
            (4.0e4, 5.0e4),
        ];
        let rows: Vec<Vec<f64>> = grid.iter().map(|&(e, f)| vec![1.0, e, e * f]).collect();
        let y: Vec<f64> = grid
            .iter()
            .map(|&(e, f)| 3.0e6 + 40.0 * e + 0.008 * e * f)
            .collect();
        let x = nnls(&Matrix::from_rows(&rows), &y);
        let pred_err: f64 = rows
            .iter()
            .zip(&y)
            .map(|(r, t)| {
                let p = x[0] * r[0] + x[1] * r[1] + x[2] * r[2];
                ((p - t) / t).abs()
            })
            .sum::<f64>()
            / y.len() as f64;
        assert!(pred_err < 1e-6, "relative error {pred_err}, coeffs {x:?}");
    }
}
