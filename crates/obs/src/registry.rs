//! The metrics registry: named counters, gauges and log2 histograms with
//! atomic recording, plus deterministic Prometheus/JSON exporters.
//!
//! Zero-cost-when-off contract (mirrors `cluster_sim::trace`): a disabled
//! registry hands out *no-op* handles — recording through one is a single
//! `Option` branch, no allocation, no lock, no atomic. Enabling the
//! registry only affects handles created afterwards, which is why call
//! sites check [`Registry::enabled`] before fetching handles.
//!
//! Thread safety: handles are `Clone + Send + Sync`; recording uses
//! relaxed atomics (sums are order-independent), registration takes a
//! short mutex. Concurrent increments are exact — no sampling, no lost
//! updates.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

/// Number of log2 buckets in a registry histogram; bucket `i` counts
/// values in `[2^i, 2^(i+1))` (bucket 0 additionally holds zero), which
/// covers the full `u64` range.
pub const HIST_BUCKETS: usize = 64;

/// Whether a metric is a pure function of the work performed
/// (`Deterministic`) or derived from host wall-clock time (`Timing`).
///
/// Deterministic metrics are byte-stable across machines and worker-thread
/// counts for a fixed workload; timing metrics are not. The default export
/// ([`Registry::snapshot`] with `include_timings = false`) contains only
/// deterministic metrics, so `juggler metrics` output can be golden-tested
/// and compared across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Pure function of the work performed; byte-stable across runs.
    Deterministic,
    /// Host wall-clock derived; varies run to run.
    Timing,
}

impl MetricClass {
    /// Lowercase label used in exports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MetricClass::Deterministic => "deterministic",
            MetricClass::Timing => "timing",
        }
    }
}

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `f64`.
    Gauge,
    /// log2-bucketed `u64` distribution.
    Histogram,
}

impl MetricKind {
    /// Lowercase label used in exports (matches Prometheus `# TYPE`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Default)]
struct CounterCell {
    value: AtomicU64,
}

#[derive(Debug, Default)]
struct GaugeCell {
    /// `f64` bit pattern; `0` encodes `+0.0`.
    bits: AtomicU64,
}

#[derive(Debug)]
struct HistogramCell {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            value.ilog2() as usize
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Handle to a registered counter. No-op (and free) when obtained from a
/// disabled registry. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.value.load(Ordering::Relaxed))
    }
}

/// Handle to a registered gauge (last-write-wins `f64`). No-op when
/// obtained from a disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if let Some(cell) = &self.0 {
            cell.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |cell| {
            f64::from_bits(cell.bits.load(Ordering::Relaxed))
        })
    }
}

/// Handle to a registered log2 histogram. No-op when obtained from a
/// disabled registry.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// A handle that records nothing.
    #[must_use]
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.record(value);
        }
    }

    /// Number of recorded observations (0 for a no-op handle).
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.count.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histogram(Arc<HistogramCell>),
}

impl Cell {
    fn kind(&self) -> MetricKind {
        match self {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }

    fn reset(&self) {
        match self {
            Cell::Counter(c) => c.value.store(0, Ordering::Relaxed),
            Cell::Gauge(g) => g.bits.store(0, Ordering::Relaxed),
            Cell::Histogram(h) => h.reset(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    help: String,
    class: MetricClass,
    cell: Cell,
}

/// A thread-safe metrics registry.
///
/// Most code records into the process-wide [`global`] registry, which is
/// **disabled by default**; `juggler metrics`, `juggler doctor`, tests and
/// benches enable it explicitly. Local instances are handy for tests that
/// must not observe each other's metrics.
#[derive(Debug)]
pub struct Registry {
    enabled: AtomicBool,
    metrics: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// A registry with the given initial enabled state.
    #[must_use]
    pub fn new(enabled: bool) -> Self {
        Registry {
            enabled: AtomicBool::new(enabled),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether handles obtained *now* will record.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables the registry. Only affects handles obtained
    /// after the call; live handles keep their recording state.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Zeroes every registered metric (registrations and help text are
    /// kept). Live handles keep working against the zeroed cells.
    pub fn reset(&self) {
        let metrics = self.metrics.lock();
        for entry in metrics.values() {
            entry.cell.reset();
        }
    }

    /// Registers (or looks up) a deterministic counter. Returns a no-op
    /// handle when the registry is disabled, or when `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.cell(name, help, MetricClass::Deterministic, MetricKind::Counter) {
            Some(Cell::Counter(c)) => Counter(Some(c)),
            _ => Counter::noop(),
        }
    }

    /// Registers (or looks up) a gauge of the given class. Returns a
    /// no-op handle when the registry is disabled, or when `name` is
    /// already registered as a different kind.
    pub fn gauge(&self, name: &str, help: &str, class: MetricClass) -> Gauge {
        match self.cell(name, help, class, MetricKind::Gauge) {
            Some(Cell::Gauge(g)) => Gauge(Some(g)),
            _ => Gauge::noop(),
        }
    }

    /// Registers (or looks up) a deterministic log2 histogram. Returns a
    /// no-op handle when the registry is disabled, or when `name` is
    /// already registered as a different kind.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.cell(
            name,
            help,
            MetricClass::Deterministic,
            MetricKind::Histogram,
        ) {
            Some(Cell::Histogram(h)) => Histogram(Some(h)),
            _ => Histogram::noop(),
        }
    }

    fn cell(&self, name: &str, help: &str, class: MetricClass, kind: MetricKind) -> Option<Cell> {
        if !self.enabled() {
            return None;
        }
        let mut metrics = self.metrics.lock();
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            class,
            cell: match kind {
                MetricKind::Counter => Cell::Counter(Arc::new(CounterCell::default())),
                MetricKind::Gauge => Cell::Gauge(Arc::new(GaugeCell::default())),
                MetricKind::Histogram => Cell::Histogram(Arc::new(HistogramCell::new())),
            },
        });
        if entry.cell.kind() != kind {
            debug_assert!(false, "metric {name} re-registered as a different kind");
            return None;
        }
        Some(match &entry.cell {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        })
    }

    /// Takes a point-in-time snapshot, sorted by metric name. With
    /// `include_timings = false` (the byte-stable default export),
    /// [`MetricClass::Timing`] metrics are omitted.
    #[must_use]
    pub fn snapshot(&self, include_timings: bool) -> Snapshot {
        let metrics = self.metrics.lock();
        let mut out = Vec::with_capacity(metrics.len());
        for (name, entry) in metrics.iter() {
            if entry.class == MetricClass::Timing && !include_timings {
                continue;
            }
            let value = match &entry.cell {
                Cell::Counter(c) => MetricValue::Counter(c.value.load(Ordering::Relaxed)),
                Cell::Gauge(g) => {
                    MetricValue::Gauge(f64::from_bits(g.bits.load(Ordering::Relaxed)))
                }
                Cell::Histogram(h) => {
                    let buckets: Vec<u64> = h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    let trim = buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
                    MetricValue::Histogram {
                        buckets: buckets[..trim].to_vec(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        max: h.max.load(Ordering::Relaxed),
                    }
                }
            };
            out.push(Metric {
                name: name.clone(),
                help: entry.help.clone(),
                class: entry.class,
                value,
            });
        }
        Snapshot { metrics: out }
    }
}

/// The process-wide registry, disabled by default. `juggler doctor`,
/// `juggler metrics`, tests and benches enable it explicitly via
/// [`Registry::set_enabled`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new(false))
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Registered name (e.g. `sim_cache_hits_total`).
    pub name: String,
    /// Help text supplied at registration.
    pub help: String,
    /// Deterministic vs timing classification.
    pub class: MetricClass,
    /// The recorded value.
    pub value: MetricValue,
}

/// Deterministic quantile estimate over log2 histogram buckets: the
/// *upper bound* of the bucket holding the rank-`ceil(count·q_num/q_den)`
/// observation (1-based, integer arithmetic — no floats, so the result
/// is bit-identical everywhere). Bucket 0 holds `{0} ∪ [1, 2)` so its
/// upper bound is 1; bucket `i > 0` covers `[2^i, 2^(i+1))` with upper
/// bound `2^(i+1) − 1`, saturating to `u64::MAX` for bucket 63.
///
/// `None` when the histogram is empty or `q_num` is zero (an empty
/// distribution has no quantiles; callers decide the fallback).
#[must_use]
pub fn log2_quantile(buckets: &[u64], count: u64, q_num: u64, q_den: u64) -> Option<u64> {
    assert!(q_den > 0, "quantile denominator must be positive");
    assert!(q_num <= q_den, "quantile must be <= 1");
    if count == 0 || q_num == 0 {
        return None;
    }
    // ceil(count * q_num / q_den) in u128 so count near u64::MAX is safe.
    let rank = (u128::from(count) * u128::from(q_num)).div_ceil(u128::from(q_den));
    let mut cumulative = 0u128;
    for (i, &b) in buckets.iter().enumerate() {
        cumulative += u128::from(b);
        if cumulative >= rank {
            return Some(bucket_upper_bound(i));
        }
    }
    // `count` exceeds the bucket total (caller passed inconsistent data);
    // fall back to the highest non-empty bucket.
    buckets
        .iter()
        .rposition(|&b| b != 0)
        .map(bucket_upper_bound)
}

/// Largest value a log2 bucket can hold (see [`log2_quantile`]).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// The value of one metric in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state; `buckets` is trimmed after the highest non-zero
    /// bucket (bucket `i` counts values in `[2^i, 2^(i+1))`).
    Histogram {
        /// Per-bucket counts, trimmed.
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values (wrapping on overflow).
        sum: u64,
        /// Largest observed value.
        max: u64,
    },
}

impl MetricValue {
    /// Upper-bound quantile estimate for a histogram value (see
    /// [`log2_quantile`]); `None` for non-histograms and empty
    /// histograms.
    #[must_use]
    pub fn quantile_upper_bound(&self, q_num: u64, q_den: u64) -> Option<u64> {
        match self {
            MetricValue::Histogram { buckets, count, .. } => {
                log2_quantile(buckets, *count, q_num, q_den)
            }
            _ => None,
        }
    }
}

/// A point-in-time, name-sorted view of a [`Registry`]. Both exporters
/// produce byte-identical output for equal snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Metrics sorted by name.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Looks up a metric by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Convenience: the value of a counter metric, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    /// Histograms emit cumulative `_bucket{le="..."}` series with power-
    /// of-two upper bounds, then `_sum` and `_count`.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(self.metrics.len() * 128);
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_prom_help(&m.help));
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{} {v}", m.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{} {}", m.name, fmt_prom_float(*v));
                }
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                    ..
                } => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    let mut cumulative = 0u64;
                    for (i, b) in buckets.iter().enumerate() {
                        cumulative += b;
                        // Bucket i covers [2^i, 2^(i+1)); the upper bound is
                        // an exact integer (u128 so 2^64 cannot overflow).
                        let le = 1u128 << (i + 1);
                        let _ = writeln!(out, "{}_bucket{{le=\"{le}\"}} {cumulative}", m.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {count}", m.name);
                    let _ = writeln!(out, "{}_sum {sum}", m.name);
                    let _ = writeln!(out, "{}_count {count}", m.name);
                }
            }
        }
        out
    }

    /// Renders the snapshot as JSON: `{"metrics": [...]}` with one object
    /// per metric. Non-finite gauge values render as `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.metrics.len() * 128 + 16);
        out.push_str("{\"metrics\":[");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = match &m.value {
                MetricValue::Counter(_) => MetricKind::Counter,
                MetricValue::Gauge(_) => MetricKind::Gauge,
                MetricValue::Histogram { .. } => MetricKind::Histogram,
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"class\":\"{}\",\"help\":\"{}\"",
                escape_json(&m.name),
                kind.label(),
                m.class.label(),
                escape_json(&m.help)
            );
            match &m.value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, ",\"value\":{v}");
                }
                MetricValue::Gauge(v) => {
                    if v.is_finite() {
                        let _ = write!(out, ",\"value\":{v}");
                    } else {
                        out.push_str(",\"value\":null");
                    }
                }
                MetricValue::Histogram {
                    buckets,
                    count,
                    sum,
                    max,
                } => {
                    let _ = write!(out, ",\"count\":{count},\"sum\":{sum},\"max\":{max}");
                    for (label, q_num) in [("p50", 50), ("p95", 95), ("p99", 99)] {
                        match log2_quantile(buckets, *count, q_num, 100) {
                            Some(v) => {
                                let _ = write!(out, ",\"{label}\":{v}");
                            }
                            None => {
                                let _ = write!(out, ",\"{label}\":null");
                            }
                        }
                    }
                    out.push_str(",\"buckets\":[");
                    for (j, b) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Prometheus sample values are floats; counter and histogram series here
/// are integers already, so this only formats gauges.
fn fmt_prom_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape_prom_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c.is_control() => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_hands_out_noops() {
        let reg = Registry::new(false);
        let c = reg.counter("x_total", "a counter");
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot(true).metrics.is_empty(), "nothing registered");
    }

    #[test]
    fn counters_accumulate_and_share_cells() {
        let reg = Registry::new(true);
        let a = reg.counter("x_total", "a counter");
        let b = reg.counter("x_total", "a counter");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(reg.snapshot(false).counter("x_total"), Some(4));
    }

    #[test]
    fn kind_conflict_yields_noop() {
        let reg = Registry::new(true);
        let _c = reg.counter("x", "first registration wins");
        // Release builds return a no-op handle; debug builds assert, so
        // only exercise the conflict path when debug_assertions are off.
        if !cfg!(debug_assertions) {
            let g = reg.gauge("x", "conflicting kind", MetricClass::Deterministic);
            g.set(1.0);
            assert_eq!(g.get(), 0.0);
        }
    }

    #[test]
    fn gauge_stores_f64() {
        let reg = Registry::new(true);
        let g = reg.gauge("ratio", "a gauge", MetricClass::Deterministic);
        g.set(0.375);
        assert_eq!(g.get(), 0.375);
    }

    #[test]
    fn histogram_buckets_by_log2_and_trims() {
        let reg = Registry::new(true);
        let h = reg.histogram("dur_us", "a histogram");
        h.record(0); // bucket 0
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(1024); // bucket 10
        let snap = reg.snapshot(false);
        match &snap.get("dur_us").expect("present").value {
            MetricValue::Histogram {
                buckets,
                count,
                sum,
                max,
            } => {
                assert_eq!(buckets.len(), 11, "trimmed after highest non-zero");
                assert_eq!(buckets[0], 2);
                assert_eq!(buckets[1], 1);
                assert_eq!(buckets[10], 1);
                assert_eq!(*count, 4);
                assert_eq!(*sum, 1027);
                assert_eq!(*max, 1024);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let reg = Registry::new(true);
        let c = reg.counter("x_total", "a counter");
        c.add(5);
        reg.reset();
        assert_eq!(c.get(), 0, "live handle sees the zeroed cell");
        assert_eq!(reg.snapshot(false).counter("x_total"), Some(0));
        c.inc();
        assert_eq!(reg.snapshot(false).counter("x_total"), Some(1));
    }

    #[test]
    fn snapshot_sorts_and_filters_timings() {
        let reg = Registry::new(true);
        reg.gauge("z_seconds", "wall clock", MetricClass::Timing)
            .set(1.25);
        reg.counter("a_total", "a counter").inc();
        let stable = reg.snapshot(false);
        assert_eq!(stable.metrics.len(), 1);
        assert_eq!(stable.metrics[0].name, "a_total");
        let full = reg.snapshot(true);
        let names: Vec<&str> = full.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["a_total", "z_seconds"], "name-sorted");
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = Registry::new(true);
        reg.counter("hits_total", "cache hits").add(7);
        reg.gauge("err_ratio", "relative error", MetricClass::Deterministic)
            .set(0.5);
        let h = reg.histogram("dur_us", "durations");
        h.record(1);
        h.record(3);
        let prom = reg.snapshot(false).to_prometheus();
        assert!(prom.contains("# HELP hits_total cache hits\n"), "{prom}");
        assert!(prom.contains("# TYPE hits_total counter\nhits_total 7\n"));
        assert!(prom.contains("# TYPE err_ratio gauge\nerr_ratio 0.5\n"));
        assert!(prom.contains("dur_us_bucket{le=\"2\"} 1\n"));
        assert!(prom.contains("dur_us_bucket{le=\"4\"} 2\n"), "cumulative");
        assert!(prom.contains("dur_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(prom.contains("dur_us_sum 4\n"));
        assert!(prom.contains("dur_us_count 2\n"));
    }

    #[test]
    fn json_export_shape() {
        let reg = Registry::new(true);
        reg.counter("hits_total", "cache \"hits\"").add(7);
        reg.gauge("bad", "non-finite", MetricClass::Deterministic)
            .set(f64::NAN);
        let json = reg.snapshot(false).to_json();
        assert!(json.starts_with("{\"metrics\":["), "{json}");
        assert!(json.contains("\"name\":\"hits_total\""));
        assert!(json.contains("\"help\":\"cache \\\"hits\\\"\""), "{json}");
        assert!(json.contains("\"value\":7"));
        assert!(json.contains("\"value\":null"), "NaN gauge → null");
    }

    #[test]
    fn equal_snapshots_export_identically() {
        let build = || {
            let reg = Registry::new(true);
            reg.counter("a_total", "a").add(2);
            reg.histogram("h_us", "h").record(9);
            reg.snapshot(false)
        };
        let (s1, s2) = (build(), build());
        assert_eq!(s1.to_prometheus(), s2.to_prometheus());
        assert_eq!(s1.to_json(), s2.to_json());
    }

    #[test]
    fn log2_quantile_edge_cases_are_pinned() {
        // Empty histogram: no quantiles.
        assert_eq!(log2_quantile(&[], 0, 95, 100), None);
        assert_eq!(log2_quantile(&[0, 0], 0, 50, 100), None);
        // q = 0 never selects a rank.
        assert_eq!(log2_quantile(&[5], 5, 0, 100), None);
        // Single observation: every quantile is that bucket's bound.
        assert_eq!(log2_quantile(&[1], 1, 50, 100), Some(1));
        assert_eq!(log2_quantile(&[1], 1, 99, 100), Some(1));
        // Bucket 0 holds zero AND one → upper bound 1.
        assert_eq!(log2_quantile(&[4], 4, 100, 100), Some(1));
        // Bucket i > 0 → 2^(i+1) − 1: 10 values in bucket 3 ([8, 16)).
        let mut b = vec![0u64; 4];
        b[3] = 10;
        assert_eq!(log2_quantile(&b, 10, 50, 100), Some(15));
        // Rank arithmetic: 100 values in bucket 0, 1 straggler in bucket
        // 10 — p99 rounds up to rank 100 (still bucket 0), p100 reaches
        // the straggler.
        let mut b = vec![0u64; 11];
        b[0] = 100;
        b[10] = 1;
        assert_eq!(log2_quantile(&b, 101, 99, 100), Some(1));
        assert_eq!(log2_quantile(&b, 101, 100, 100), Some(2047));
        // Bucket 63 saturates to u64::MAX.
        let mut b = vec![0u64; HIST_BUCKETS];
        b[63] = 1;
        assert_eq!(log2_quantile(&b, 1, 50, 100), Some(u64::MAX));
        // Inconsistent count (larger than bucket total) falls back to the
        // highest non-empty bucket instead of panicking.
        assert_eq!(log2_quantile(&[2], 10, 99, 100), Some(1));
    }

    #[test]
    fn quantiles_flow_through_snapshot_and_json_export() {
        let reg = Registry::new(true);
        let h = reg.histogram("err_micro", "relative error in micro-units");
        for _ in 0..98 {
            h.record(80_000); // bucket 16 ([65536, 131072))
        }
        h.record(700_000); // bucket 19
        h.record(900_000); // bucket 19
        let snap = reg.snapshot(false);
        let value = &snap.get("err_micro").expect("present").value;
        assert_eq!(value.quantile_upper_bound(50, 100), Some(131_071));
        assert_eq!(value.quantile_upper_bound(95, 100), Some(131_071));
        assert_eq!(value.quantile_upper_bound(99, 100), Some(1_048_575));
        let json = snap.to_json();
        assert!(
            json.contains("\"p50\":131071,\"p95\":131071,\"p99\":1048575"),
            "{json}"
        );
        // Empty histograms export null quantiles.
        let reg = Registry::new(true);
        let _ = reg.histogram("empty_micro", "no samples");
        let json = reg.snapshot(false).to_json();
        assert!(
            json.contains("\"p50\":null,\"p95\":null,\"p99\":null"),
            "{json}"
        );
    }

    #[test]
    fn global_registry_starts_disabled() {
        // Other tests in this binary do not touch the global registry, so
        // this observation is race-free.
        assert!(!global().enabled());
        let c = global().counter("unused_total", "never records");
        c.inc();
        assert_eq!(c.get(), 0);
    }
}
