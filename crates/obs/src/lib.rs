//! Framework-wide observability for the Juggler reproduction.
//!
//! Two concerns live here because every other crate needs both:
//!
//! 1. **A metrics registry** ([`Registry`]) — counters, gauges, and
//!    log2 histograms behind the same zero-cost-when-off discipline as
//!    `cluster_sim::trace`: a disabled registry hands out no-op handles
//!    and call sites pay one branch, no allocation, no lock. Snapshots
//!    export to Prometheus text format and JSON, with deterministic
//!    (sorted, byte-stable) output so exports can be golden-tested.
//! 2. **Formatting helpers** ([`fmt_sig`], [`fmt_duration_s`],
//!    [`fmt_bytes`]) — the single source of truth for human-facing
//!    numbers. Reports across `core`, `bench`, and the CLI route
//!    durations and sizes through these so units and precision stay
//!    consistent (3 significant figures, `ms`/`s` tiers).
//!
//! The registry deliberately distinguishes *stable* metrics (pure
//! functions of the work performed — cache hits, NNLS iterations) from
//! *timing* metrics (host wall-clock). Only stable metrics appear in
//! the default export, which is what makes `juggler metrics` output
//! byte-identical across worker-thread counts and machines.
//!
//! On top of those two, this crate hosts the *cross-run* observability
//! primitives: a dependency-free SHA-256 ([`sha256_hex`]) for content
//! addressing, the on-disk run ledger ([`LedgerStore`]) that files run
//! manifests under `results/runs/`, and the perf-regression gate
//! ([`BaselineSpec`]) behind `juggler perf-report`. The *typed* manifest
//! schema lives in `juggler-core::provenance` (core depends on obs, not
//! the other way round); obs deliberately only knows how to hash, store,
//! and gate JSON documents.
//!
//! Two further observability surfaces round the crate out: the
//! hierarchical phase profiler ([`prof`]) — scoped spans merged into a
//! deterministic call tree with tree/flamegraph/JSON exports and
//! node-by-node diffing — and leveled stderr diagnostics ([`log`],
//! `JUGGLER_LOG=warn|info|debug`, off by default so golden-tested
//! output stays byte-stable).
//!
//! Finally, [`health`] holds the streaming model-quality primitives:
//! fixed-point drift detectors (Page–Hinkley, CUSUM, EWMA bands) and
//! declarative error budgets ([`SloSpec`]) that
//! `juggler-core::watchtower` folds the run ledger through.

#![warn(missing_docs)]

mod format;
mod hash;
pub mod health;
mod ledger;
pub mod log;
mod perf;
pub mod prof;
mod registry;

pub use format::{fmt_bytes, fmt_bytes_delta, fmt_duration_s, fmt_percent, fmt_rate, fmt_sig};
pub use hash::{sha256, sha256_hex, to_hex, Sha256};
pub use health::{
    fmt_micro_pct, to_micro, Cusum, EwmaBand, Firing, PageHinkley, SloSpec, Verdict, MICRO,
};
pub use ledger::{LedgerEntryMeta, LedgerStore, StoredRun, RUN_ID_LEN};
pub use perf::{
    default_checks, lookup, regression_attribution, BaselineSpec, BenchReport, Check, CheckOp,
    CheckOutcome, PerfReport,
};
pub use registry::{
    global, log2_quantile, Counter, Gauge, Histogram, Metric, MetricClass, MetricKind, MetricValue,
    Registry, Snapshot, HIST_BUCKETS,
};
