//! Deterministic hierarchical phase profiler.
//!
//! Call sites open scoped spans (`prof::scope("stage4/grid")`); each span
//! pushes path segments onto a per-thread stack and, on drop, charges its
//! elapsed wall time to the innermost node. Thread-local trees merge into
//! one global call tree whenever a thread's stack empties, so the profile
//! survives scoped worker pools. The merged tree carries, per node:
//!
//! * **calls** — how many spans ended at this node;
//! * **total time** — wall time measured at this node (or the sum of its
//!   children for pure intermediate nodes). A node's total is the larger
//!   of its own measurement and its children's sum, so parallel fan-outs
//!   report aggregate worker time rather than clamping at the fan-out's
//!   wall clock;
//! * **self time** — total minus children, the basis for flamegraphs;
//! * **counter deltas** — work counts ([`count`]) attributed to the
//!   innermost active scope (cache hits, NNLS iterations, retries).
//!
//! The determinism contract mirrors the metrics registry: with the
//! profiler disabled every entry point is a no-op behind one atomic load.
//! Enabled, the tree *structure* — node names, call counts, and counter
//! values — is a pure function of the work performed and therefore
//! bit-identical at any `JUGGLER_THREADS` count, provided fan-out sites
//! propagate their phase context to workers with [`fork`]/[`ForkCtx::attach`].
//! Timings are host wall-clock and excluded from [`Profile::structure_digest`],
//! exactly like `MetricClass::Timing` metrics are excluded from default
//! registry snapshots.
//!
//! Exports: a rendered tree report ([`Profile::render_tree`]), collapsed
//! stacks for inferno/speedscope flamegraphs ([`Profile::to_collapsed`],
//! built on the shared [`fold_stacks`] folder that the sim trace exporter
//! reuses), and canonical JSON ([`Profile::to_json`]) that round-trips
//! through [`Profile::from_json_value`] for ledger storage and
//! node-by-node diffing ([`ProfileDiff`]).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde_json::Value;

use crate::format::{fmt_duration_s, fmt_percent};
use crate::hash::sha256_hex;

// ── thread-local span stack ──────────────────────────────────────────

/// One node of a thread-local (pre-merge) call tree. Children are a flat
/// index list searched linearly — phase fan-out is small by construction
/// (phase names, not per-task identifiers).
struct LocalNode {
    name: String,
    children: Vec<u32>,
    calls: u64,
    leaf_ns: u64,
    counters: Vec<(String, u64)>,
}

#[derive(Default)]
struct LocalTree {
    nodes: Vec<LocalNode>,
    roots: Vec<u32>,
    stack: Vec<u32>,
}

impl LocalTree {
    /// Index of `name` under `parent` (or among the roots), creating it
    /// on first use.
    fn child_of(&mut self, parent: Option<u32>, name: &str) -> u32 {
        let siblings = match parent {
            Some(p) => &self.nodes[p as usize].children,
            None => &self.roots,
        };
        if let Some(&id) = siblings
            .iter()
            .find(|&&id| self.nodes[id as usize].name == name)
        {
            return id;
        }
        let id = u32::try_from(self.nodes.len()).expect("fewer than 4G profile nodes");
        self.nodes.push(LocalNode {
            name: name.to_owned(),
            children: Vec::new(),
            calls: 0,
            leaf_ns: 0,
            counters: Vec::new(),
        });
        match parent {
            Some(p) => self.nodes[p as usize].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    /// Pushes every `/`-separated segment of `path` onto the stack,
    /// returning how many were pushed.
    fn enter(&mut self, path: &str) -> u16 {
        let mut pushed = 0u16;
        for seg in path.split('/').filter(|s| !s.is_empty()) {
            let parent = self.stack.last().copied();
            let id = self.child_of(parent, seg);
            self.stack.push(id);
            pushed += 1;
        }
        pushed
    }

    /// Pops `pushed` segments; when `elapsed_ns` is `Some`, the innermost
    /// node is charged the elapsed time and one call.
    fn exit(&mut self, pushed: u16, elapsed_ns: Option<u64>) {
        if pushed == 0 {
            return;
        }
        if let (Some(ns), Some(&leaf)) = (elapsed_ns, self.stack.last()) {
            let node = &mut self.nodes[leaf as usize];
            node.calls += 1;
            node.leaf_ns += ns;
        }
        for _ in 0..pushed {
            self.stack.pop();
        }
        if self.stack.is_empty() && !self.roots.is_empty() {
            self.flush();
        }
    }

    /// Merges this thread's tree into the global profiler and clears it.
    fn flush(&mut self) {
        let mut merged = profiler().merged.lock().expect("profiler lock");
        let roots = std::mem::take(&mut self.roots);
        for root in roots {
            self.merge_into(&mut merged, root);
        }
        self.nodes.clear();
    }

    fn merge_into(&self, into: &mut BTreeMap<String, MergedNode>, id: u32) {
        let node = &self.nodes[id as usize];
        let entry = into.entry(node.name.clone()).or_default();
        entry.calls += node.calls;
        entry.leaf_ns += node.leaf_ns;
        for (name, delta) in &node.counters {
            *entry.counters.entry(name.clone()).or_insert(0) += delta;
        }
        // `entry` borrows `into`; recurse through a scratch map swap so the
        // borrow checker sees disjoint trees.
        let mut children = std::mem::take(&mut entry.children);
        for &child in &node.children {
            self.merge_into(&mut children, child);
        }
        into.get_mut(&node.name).expect("just inserted").children = children;
    }
}

thread_local! {
    static LOCAL: RefCell<LocalTree> = RefCell::new(LocalTree::default());
}

// ── the global profiler ──────────────────────────────────────────────

/// One node of the merged global tree. Children are name-keyed, which is
/// what makes merge order (and therefore thread count) invisible in the
/// exported structure.
#[derive(Default)]
struct MergedNode {
    calls: u64,
    leaf_ns: u64,
    counters: BTreeMap<String, u64>,
    children: BTreeMap<String, MergedNode>,
}

/// The process-wide profiler: an on/off switch plus the merged call tree.
/// Disabled (the default), [`scope`]/[`count`]/[`fork`] cost one relaxed
/// atomic load and touch no thread-local state.
pub struct Profiler {
    enabled: AtomicBool,
    merged: Mutex<BTreeMap<String, MergedNode>>,
}

impl Profiler {
    fn new() -> Self {
        Profiler {
            enabled: AtomicBool::new(false),
            merged: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether spans are being recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Spans opened while disabled stay no-ops
    /// even if recording is enabled before they close.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Enables recording (convenience for [`Profiler::set_enabled`]).
    pub fn enable(&self) {
        self.set_enabled(true);
    }

    /// Discards everything recorded so far. Call between runs with no
    /// spans open on any thread.
    pub fn reset(&self) {
        self.merged.lock().expect("profiler lock").clear();
    }

    /// Takes the merged profile recorded so far, leaving the profiler
    /// empty. The calling thread's local tree is flushed first; other
    /// threads flush when their outermost span closes, so collect only
    /// after joining workers.
    #[must_use]
    pub fn take_profile(&self) -> Profile {
        LOCAL.with(|l| {
            let mut t = l.borrow_mut();
            if t.stack.is_empty() && !t.roots.is_empty() {
                t.flush();
            }
        });
        let merged = std::mem::take(&mut *self.merged.lock().expect("profiler lock"));
        Profile {
            roots: merged.iter().map(|(n, m)| build_node(n, m)).collect(),
        }
    }
}

fn build_node(name: &str, m: &MergedNode) -> ProfileNode {
    let children: Vec<ProfileNode> = m.children.iter().map(|(n, c)| build_node(n, c)).collect();
    let child_sum: u64 = children.iter().map(|c| c.total_ns).sum();
    let total_ns = m.leaf_ns.max(child_sum);
    ProfileNode {
        name: name.to_owned(),
        calls: m.calls,
        total_ns,
        self_ns: total_ns - child_sum,
        counters: m.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        children,
    }
}

/// The process-wide [`Profiler`], disabled until something calls
/// [`Profiler::enable`] (the `juggler profile` command, the overhead
/// bench, tests).
pub fn profiler() -> &'static Profiler {
    static GLOBAL: OnceLock<Profiler> = OnceLock::new();
    GLOBAL.get_or_init(Profiler::new)
}

// ── span guards ──────────────────────────────────────────────────────

/// RAII guard for one phase span; created by [`scope`]. Dropping it pops
/// the segments it pushed and charges the elapsed wall time to the
/// innermost one.
#[must_use = "a profiling scope measures until dropped"]
pub struct Scope {
    pushed: u16,
    start: Option<Instant>,
}

impl Drop for Scope {
    fn drop(&mut self) {
        if self.pushed == 0 {
            return;
        }
        let elapsed = self
            .start
            .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX));
        LOCAL.with(|l| l.borrow_mut().exit(self.pushed, elapsed));
    }
}

/// Opens a phase span. `path` may carry several `/`-separated segments
/// (`"stage4/grid"`); they nest under whatever scope is already active on
/// this thread, so shared code (the simulator, the NNLS solver) shows up
/// under each phase that calls it. No-op while the profiler is disabled.
pub fn scope(path: &str) -> Scope {
    if !profiler().enabled() {
        return Scope {
            pushed: 0,
            start: None,
        };
    }
    let pushed = LOCAL.with(|l| l.borrow_mut().enter(path));
    Scope {
        pushed,
        start: Some(Instant::now()),
    }
}

/// Attributes `delta` units of a named counter (cache hits, solver
/// iterations, retries) to the innermost active scope on this thread.
/// Dropped silently when the profiler is disabled or no scope is open.
pub fn count(name: &str, delta: u64) {
    if delta == 0 || !profiler().enabled() {
        return;
    }
    LOCAL.with(|l| {
        let mut t = l.borrow_mut();
        let Some(&top) = t.stack.last() else { return };
        let node = &mut t.nodes[top as usize];
        match node.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += delta,
            None => node.counters.push((name.to_owned(), delta)),
        }
    });
}

/// A captured phase context for handing to worker threads. Workers call
/// [`ForkCtx::attach`] so their spans nest under the phase that spawned
/// them — without this, a stage-4 grid cell profiled on a worker would
/// surface at the tree root on 8 threads but under `stage4` on 1 thread,
/// breaking the structure-determinism contract.
#[derive(Clone)]
pub struct ForkCtx {
    path: Option<Arc<Vec<String>>>,
}

/// RAII guard re-establishing a forked phase context on a worker thread;
/// see [`ForkCtx::attach`].
#[must_use = "an attached fork context holds until dropped"]
pub struct AttachGuard {
    pushed: u16,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        if self.pushed == 0 {
            return;
        }
        LOCAL.with(|l| l.borrow_mut().exit(self.pushed, None));
    }
}

/// Captures the calling thread's active phase path (cheap `Arc` clone per
/// worker; `None` and fully free when the profiler is disabled).
pub fn fork() -> ForkCtx {
    if !profiler().enabled() {
        return ForkCtx { path: None };
    }
    let path = LOCAL.with(|l| {
        let t = l.borrow();
        t.stack
            .iter()
            .map(|&id| t.nodes[id as usize].name.clone())
            .collect::<Vec<String>>()
    });
    if path.is_empty() {
        return ForkCtx { path: None };
    }
    ForkCtx {
        path: Some(Arc::new(path)),
    }
}

impl ForkCtx {
    /// Re-establishes the captured path on the current thread. The guard
    /// adds no call counts and no time of its own — it only provides the
    /// ancestry for spans the worker opens beneath it.
    pub fn attach(&self) -> AttachGuard {
        let Some(path) = &self.path else {
            return AttachGuard { pushed: 0 };
        };
        let pushed = LOCAL.with(|l| {
            let mut t = l.borrow_mut();
            let mut pushed = 0u16;
            for seg in path.iter() {
                let parent = t.stack.last().copied();
                let id = t.child_of(parent, seg);
                t.stack.push(id);
                pushed += 1;
            }
            pushed
        });
        AttachGuard { pushed }
    }
}

// ── the exported profile ─────────────────────────────────────────────

/// One node of an exported profile: aggregated calls, total/self wall
/// time, counter deltas, and name-sorted children.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Phase name (one path segment).
    pub name: String,
    /// How many spans ended at this node.
    pub calls: u64,
    /// Wall time, ns: the node's own measurement or its children's sum,
    /// whichever is larger (parallel children can exceed the parent's
    /// wall clock).
    pub total_ns: u64,
    /// Total minus children — the flamegraph weight.
    pub self_ns: u64,
    /// Counter deltas attributed to this node, key-sorted.
    pub counters: Vec<(String, u64)>,
    /// Child phases, name-sorted.
    pub children: Vec<ProfileNode>,
}

/// A merged, export-ready call tree taken from the [`Profiler`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Top-level phases, name-sorted.
    pub roots: Vec<ProfileNode>,
}

impl Profile {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total recorded wall time across all root phases, ns.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Renders the aligned self/total tree report. Timing columns are
    /// host wall-clock; the `self%` column is each node's self time as a
    /// share of the whole profile.
    #[must_use]
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:>10}  {:>10}  {:>6}  {:>8}  {}\n",
            "total", "self", "self%", "calls", "phase"
        ));
        let grand = self.total_ns();
        for root in &self.roots {
            render_node(root, 0, grand, &mut out);
        }
        out
    }

    /// Renders the structure-only tree: names, call counts, and counter
    /// deltas, no timings. This is the deterministic surface golden
    /// tests pin — byte-identical across hosts and thread counts.
    #[must_use]
    pub fn render_structure(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>8}  {}\n", "calls", "phase"));
        for root in &self.roots {
            render_structure_node(root, 0, &mut out);
        }
        out
    }

    /// Collapsed-stack export (one `a;b;c weight` line per stack, weights
    /// in self-time nanoseconds) — the format inferno and speedscope
    /// ingest directly. Shares [`fold_stacks`] with the sim trace
    /// exporter.
    #[must_use]
    pub fn to_collapsed(&self) -> String {
        let mut stacks: Vec<(Vec<String>, u64)> = Vec::new();
        let mut frames: Vec<String> = Vec::new();
        for root in &self.roots {
            collect_stacks(root, &mut frames, &mut stacks);
        }
        fold_stacks(stacks)
    }

    /// Canonical JSON [`Value`] (fixed key order, integer times) — what
    /// the profile ledger stores and [`Profile::from_json_value`] reads
    /// back.
    #[must_use]
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_owned(), Value::Int(1)),
            (
                "roots".to_owned(),
                Value::Array(self.roots.iter().map(node_to_json).collect()),
            ),
        ])
    }

    /// Canonical compact JSON string of [`Profile::to_json_value`].
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_json_value()).expect("profile serializes")
    }

    /// Parses a profile from its canonical JSON form.
    ///
    /// # Errors
    /// Returns a message naming the first malformed field.
    pub fn from_json_value(v: &Value) -> Result<Profile, String> {
        let roots = v
            .get("roots")
            .ok_or("profile JSON missing `roots`")?
            .expect_array("roots")
            .map_err(|e| e.to_string())?;
        Ok(Profile {
            roots: roots
                .iter()
                .map(node_from_json)
                .collect::<Result<Vec<_>, String>>()?,
        })
    }

    /// Parses a profile from a canonical JSON string.
    ///
    /// # Errors
    /// Returns a message for unparseable JSON or a malformed tree.
    pub fn from_json(s: &str) -> Result<Profile, String> {
        let v: Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        Profile::from_json_value(&v)
    }

    /// SHA-256 over the structure-only canonical form — names, call
    /// counts, and counters, with every timing field excluded. Two runs
    /// of the same work produce the same digest regardless of host speed
    /// or `JUGGLER_THREADS`.
    #[must_use]
    pub fn structure_digest(&self) -> String {
        let mut canon = String::new();
        for root in &self.roots {
            push_structure(root, &mut canon);
        }
        sha256_hex(canon.as_bytes())
    }
}

fn render_node(node: &ProfileNode, depth: usize, grand: u64, out: &mut String) {
    let share = if grand == 0 {
        0.0
    } else {
        node.self_ns as f64 / grand as f64
    };
    let mut label = format!("{}{}", "  ".repeat(depth), node.name);
    if !node.counters.is_empty() {
        let cs: Vec<String> = node
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        label.push_str(&format!("  [{}]", cs.join(" ")));
    }
    out.push_str(&format!(
        "{:>10}  {:>10}  {:>6}  {:>8}  {}\n",
        fmt_duration_s(node.total_ns as f64 / 1e9),
        fmt_duration_s(node.self_ns as f64 / 1e9),
        fmt_percent(share),
        node.calls,
        label
    ));
    for child in &node.children {
        render_node(child, depth + 1, grand, out);
    }
}

fn render_structure_node(node: &ProfileNode, depth: usize, out: &mut String) {
    let mut label = format!("{}{}", "  ".repeat(depth), node.name);
    if !node.counters.is_empty() {
        let cs: Vec<String> = node
            .counters
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        label.push_str(&format!("  [{}]", cs.join(" ")));
    }
    out.push_str(&format!("{:>8}  {}\n", node.calls, label));
    for child in &node.children {
        render_structure_node(child, depth + 1, out);
    }
}

fn collect_stacks(node: &ProfileNode, frames: &mut Vec<String>, out: &mut Vec<(Vec<String>, u64)>) {
    frames.push(node.name.clone());
    if node.self_ns > 0 || node.children.is_empty() {
        out.push((frames.clone(), node.self_ns));
    }
    for child in &node.children {
        collect_stacks(child, frames, out);
    }
    frames.pop();
}

fn node_to_json(node: &ProfileNode) -> Value {
    Value::Object(vec![
        ("name".to_owned(), Value::Str(node.name.clone())),
        ("calls".to_owned(), Value::UInt(node.calls)),
        ("total_ns".to_owned(), Value::UInt(node.total_ns)),
        ("self_ns".to_owned(), Value::UInt(node.self_ns)),
        (
            "counters".to_owned(),
            Value::Object(
                node.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                    .collect(),
            ),
        ),
        (
            "children".to_owned(),
            Value::Array(node.children.iter().map(node_to_json).collect()),
        ),
    ])
}

fn json_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::Int(n) if *n >= 0 => Ok(*n as u64),
        Value::UInt(n) => Ok(*n),
        Value::Float(x) if *x >= 0.0 && x.fract() == 0.0 => Ok(*x as u64),
        other => Err(format!(
            "expected unsigned integer for {what}, got {other:?}"
        )),
    }
}

fn node_from_json(v: &Value) -> Result<ProfileNode, String> {
    let name = match v.get("name") {
        Some(Value::Str(s)) => s.clone(),
        _ => return Err("profile node missing string `name`".to_owned()),
    };
    let calls = json_u64(v.get("calls").unwrap_or(&Value::Int(0)), "calls")?;
    let total_ns = json_u64(v.get("total_ns").unwrap_or(&Value::Int(0)), "total_ns")?;
    let self_ns = json_u64(v.get("self_ns").unwrap_or(&Value::Int(0)), "self_ns")?;
    let mut counters = Vec::new();
    if let Some(c) = v.get("counters") {
        for (k, cv) in c.expect_object("counters").map_err(|e| e.to_string())? {
            counters.push((k.clone(), json_u64(cv, k)?));
        }
    }
    let mut children = Vec::new();
    if let Some(c) = v.get("children") {
        for cv in c.expect_array("children").map_err(|e| e.to_string())? {
            children.push(node_from_json(cv)?);
        }
    }
    Ok(ProfileNode {
        name,
        calls,
        total_ns,
        self_ns,
        counters,
        children,
    })
}

fn push_structure(node: &ProfileNode, out: &mut String) {
    out.push_str(&node.name);
    out.push(':');
    out.push_str(&node.calls.to_string());
    for (k, v) in &node.counters {
        out.push(';');
        out.push_str(k);
        out.push('=');
        out.push_str(&v.to_string());
    }
    out.push('(');
    for child in &node.children {
        push_structure(child, out);
    }
    out.push(')');
}

// ── the shared stack folder ──────────────────────────────────────────

/// Folds `(stack frames, weight)` pairs into collapsed-stack text:
/// identical stacks merge (weights summed), lines sort lexicographically,
/// frames join with `;` and the weight follows a space — the input format
/// of `inferno-flamegraph` and speedscope. Both [`Profile::to_collapsed`]
/// and the sim trace exporter route through here so every flamegraph in
/// the workspace is produced by one folder.
#[must_use]
pub fn fold_stacks(stacks: impl IntoIterator<Item = (Vec<String>, u64)>) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (frames, weight) in stacks {
        if frames.is_empty() {
            continue;
        }
        *folded.entry(frames.join(";")).or_insert(0) += weight;
    }
    let mut out = String::new();
    for (stack, weight) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

// ── node-by-node diffing ─────────────────────────────────────────────

/// One phase's before/after comparison in a [`ProfileDiff`]. `None`
/// totals mark phases present on only one side.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// `/`-joined path of the phase.
    pub path: String,
    /// Total time in the baseline profile, ns (`None` when added).
    pub base_total_ns: Option<u64>,
    /// Total time in the new profile, ns (`None` when removed).
    pub new_total_ns: Option<u64>,
    /// Calls in the baseline profile.
    pub base_calls: u64,
    /// Calls in the new profile.
    pub new_calls: u64,
}

impl PhaseDelta {
    /// Signed time change, ns (absent sides count as zero).
    #[must_use]
    pub fn delta_ns(&self) -> i64 {
        self.new_total_ns.unwrap_or(0) as i64 - self.base_total_ns.unwrap_or(0) as i64
    }

    /// Relative time change (`new/base − 1`); `None` without a baseline.
    #[must_use]
    pub fn rel_change(&self) -> Option<f64> {
        match (self.base_total_ns, self.new_total_ns) {
            (Some(b), Some(n)) if b > 0 => Some(n as f64 / b as f64 - 1.0),
            _ => None,
        }
    }

    /// One human-readable line for reports: path, before → after, delta.
    #[must_use]
    pub fn render(&self) -> String {
        let fmt = |ns: Option<u64>| match ns {
            Some(ns) => fmt_duration_s(ns as f64 / 1e9),
            None => "—".to_owned(),
        };
        let delta = self.delta_ns();
        let sign = if delta >= 0 { "+" } else { "-" };
        let mut line = format!(
            "{}: {} -> {} ({sign}{})",
            self.path,
            fmt(self.base_total_ns),
            fmt(self.new_total_ns),
            fmt_duration_s(delta.unsigned_abs() as f64 / 1e9),
        );
        if let Some(rel) = self.rel_change() {
            line.push_str(&format!(
                ", {}{}",
                if rel >= 0.0 { "+" } else { "-" },
                fmt_percent(rel.abs())
            ));
        }
        line
    }
}

/// A node-by-node comparison of two profiles, flattened to `/`-joined
/// phase paths. Backs `juggler profile --diff` and the perf gate's
/// regression attribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileDiff {
    /// Every phase present in either profile, path-sorted.
    pub phases: Vec<PhaseDelta>,
}

/// `(total_ns, calls)` for one side of a diff, absent if the phase did
/// not appear in that profile.
type SideStats = Option<(u64, u64)>;

impl ProfileDiff {
    /// Compares `base` (earlier) against `new` (later).
    #[must_use]
    pub fn between(base: &Profile, new: &Profile) -> ProfileDiff {
        let mut flat: BTreeMap<String, (SideStats, SideStats)> = BTreeMap::new();
        flatten(&base.roots, &mut Vec::new(), &mut |path, node| {
            flat.entry(path).or_default().0 = Some((node.total_ns, node.calls));
        });
        flatten(&new.roots, &mut Vec::new(), &mut |path, node| {
            flat.entry(path).or_default().1 = Some((node.total_ns, node.calls));
        });
        ProfileDiff {
            phases: flat
                .into_iter()
                .map(|(path, (base, new))| PhaseDelta {
                    path,
                    base_total_ns: base.map(|(t, _)| t),
                    new_total_ns: new.map(|(t, _)| t),
                    base_calls: base.map_or(0, |(_, c)| c),
                    new_calls: new.map_or(0, |(_, c)| c),
                })
                .collect(),
        }
    }

    /// Phases that got slower, largest absolute regression first (ties
    /// break on path, so the ordering is deterministic).
    #[must_use]
    pub fn regressions(&self) -> Vec<&PhaseDelta> {
        let mut out: Vec<&PhaseDelta> = self.phases.iter().filter(|p| p.delta_ns() > 0).collect();
        out.sort_by(|a, b| b.delta_ns().cmp(&a.delta_ns()).then(a.path.cmp(&b.path)));
        out
    }

    /// The `n` largest regressions, rendered one per line — what
    /// `perf-report` prints when a throughput check trips.
    #[must_use]
    pub fn top_regressed(&self, n: usize) -> Vec<String> {
        self.regressions()
            .into_iter()
            .take(n)
            .map(PhaseDelta::render)
            .collect()
    }

    /// Full per-phase report, path-sorted, one line per phase.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            out.push_str(&p.render());
            out.push('\n');
        }
        out
    }
}

fn flatten(
    nodes: &[ProfileNode],
    path: &mut Vec<String>,
    f: &mut impl FnMut(String, &ProfileNode),
) {
    for node in nodes {
        path.push(node.name.clone());
        f(path.join("/"), node);
        flatten(&node.children, path, f);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global profiler is process state; tests that touch it take
    /// this lock and reset on entry so they compose under the parallel
    /// test runner.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_profiler(f: impl FnOnce()) -> Profile {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        profiler().reset();
        profiler().enable();
        f();
        let p = profiler().take_profile();
        profiler().set_enabled(false);
        p
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        profiler().reset();
        profiler().set_enabled(false);
        {
            let _s = scope("a/b");
            count("hits", 3);
        }
        assert!(profiler().take_profile().is_empty());
    }

    #[test]
    fn nested_scopes_build_a_tree_with_self_time() {
        let p = with_profiler(|| {
            let _outer = scope("train");
            for _ in 0..3 {
                let _inner = scope("fit");
                count("iters", 2);
            }
        });
        assert_eq!(p.roots.len(), 1);
        let train = &p.roots[0];
        assert_eq!(train.name, "train");
        assert_eq!(train.calls, 1);
        assert_eq!(train.children.len(), 1);
        let fit = &train.children[0];
        assert_eq!((fit.name.as_str(), fit.calls), ("fit", 3));
        assert_eq!(fit.counters, vec![("iters".to_owned(), 6)]);
        assert!(train.total_ns >= fit.total_ns);
        assert_eq!(train.self_ns, train.total_ns - fit.total_ns);
    }

    #[test]
    fn multi_segment_paths_create_intermediate_nodes() {
        let p = with_profiler(|| {
            let _s = scope("stage4/grid/fit");
        });
        let s4 = &p.roots[0];
        assert_eq!(s4.name, "stage4");
        assert_eq!(s4.calls, 0, "intermediate segments carry no calls");
        let grid = &s4.children[0];
        let fit = &grid.children[0];
        assert_eq!(fit.calls, 1);
        // Intermediates inherit the leaf's time through the child-sum rule.
        assert_eq!(s4.total_ns, fit.total_ns);
        assert_eq!(s4.self_ns, 0);
    }

    #[test]
    fn forked_workers_nest_under_the_spawning_phase() {
        let p = with_profiler(|| {
            let _outer = scope("stage2");
            let ctx = fork();
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        let _a = ctx.attach();
                        let _run = scope("sim");
                        count("tasks", 5);
                    });
                }
            });
        });
        let stage2 = &p.roots[0];
        assert_eq!(stage2.name, "stage2");
        assert_eq!(stage2.calls, 1, "attach adds no calls to the parent");
        let sim = &stage2.children[0];
        assert_eq!((sim.name.as_str(), sim.calls), ("sim", 2));
        assert_eq!(sim.counters, vec![("tasks".to_owned(), 10)]);
    }

    #[test]
    fn structure_digest_ignores_timings() {
        let mk = |ns: u64| Profile {
            roots: vec![ProfileNode {
                name: "a".into(),
                calls: 2,
                total_ns: ns,
                self_ns: ns,
                counters: vec![("c".into(), 7)],
                children: vec![],
            }],
        };
        assert_eq!(mk(10).structure_digest(), mk(99_999).structure_digest());
        // ...but not calls or counters.
        let mut other = mk(10);
        other.roots[0].calls = 3;
        assert_ne!(mk(10).structure_digest(), other.structure_digest());
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let p = with_profiler(|| {
            let _s = scope("a");
            let _t = scope("b/c");
            count("k", 4);
        });
        let back = Profile::from_json(&p.to_json()).expect("roundtrip");
        assert_eq!(p, back);
    }

    #[test]
    fn collapsed_output_folds_and_sorts() {
        let txt = fold_stacks(vec![
            (vec!["a".into(), "b".into()], 5),
            (vec!["a".into()], 2),
            (vec!["a".into(), "b".into()], 3),
            (vec![], 99),
        ]);
        assert_eq!(txt, "a 2\na;b 8\n");
    }

    #[test]
    fn collapsed_profile_lines_carry_self_weights() {
        let p = Profile {
            roots: vec![ProfileNode {
                name: "root".into(),
                calls: 1,
                total_ns: 10,
                self_ns: 4,
                counters: vec![],
                children: vec![ProfileNode {
                    name: "leaf".into(),
                    calls: 1,
                    total_ns: 6,
                    self_ns: 6,
                    counters: vec![],
                    children: vec![],
                }],
            }],
        };
        assert_eq!(p.to_collapsed(), "root 4\nroot;leaf 6\n");
    }

    #[test]
    fn diff_reports_added_removed_and_regressed_phases() {
        let mk = |total: u64, extra: bool| {
            let mut roots = vec![ProfileNode {
                name: "a".into(),
                calls: 1,
                total_ns: total,
                self_ns: total,
                counters: vec![],
                children: vec![],
            }];
            if extra {
                roots.push(ProfileNode {
                    name: "b".into(),
                    calls: 1,
                    total_ns: 1,
                    self_ns: 1,
                    counters: vec![],
                    children: vec![],
                });
            }
            Profile { roots }
        };
        let diff = ProfileDiff::between(&mk(100, false), &mk(250, true));
        assert_eq!(diff.phases.len(), 2);
        let regressed = diff.regressions();
        assert_eq!(regressed[0].path, "a");
        assert_eq!(regressed[0].delta_ns(), 150);
        assert_eq!(regressed[1].path, "b");
        assert_eq!(regressed[1].base_total_ns, None);
        let top = diff.top_regressed(1);
        assert_eq!(top.len(), 1);
        assert!(top[0].starts_with("a:"), "{top:?}");
        assert!(top[0].contains("+150%"), "{top:?}");
    }

    #[test]
    fn scope_opened_disabled_stays_inert_after_enable() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        profiler().reset();
        profiler().set_enabled(false);
        let s = scope("late");
        profiler().enable();
        drop(s);
        let p = profiler().take_profile();
        profiler().set_enabled(false);
        assert!(p.is_empty());
    }
}
