//! Leveled diagnostic logging (`JUGGLER_LOG=warn|info|debug`).
//!
//! The workspace's human-facing *results* go to stdout and are often
//! golden-tested byte-for-byte; progress and diagnostic chatter must
//! never mix into them. The [`log_warn!`], [`log_info!`], and
//! [`log_debug!`] macros write to **stderr**, and only when `JUGGLER_LOG`
//! enables their level — off by default, so stdout *and* stderr are
//! byte-stable unless a human opts in. Disabled calls cost one relaxed
//! atomic load; format arguments are not evaluated.
//!
//! Levels nest: `warn` < `info` < `debug`, each enabling everything
//! before it. Unknown values of `JUGGLER_LOG` mean "off", matching how
//! `JUGGLER_THREADS` treats garbage as its default.

use std::sync::atomic::{AtomicU8, Ordering};

/// Diagnostic severity, ordered from quietest to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted (the default).
    Off = 0,
    /// Unexpected-but-handled conditions (retries, clamped parameters).
    Warn = 1,
    /// Coarse progress (a pipeline stage finished).
    Info = 2,
    /// Fine-grained detail (per-fit, per-run).
    Debug = 3,
}

/// Cached level; `u8::MAX` marks "not parsed yet".
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

fn parse_env() -> Level {
    match std::env::var("JUGGLER_LOG").as_deref() {
        Ok("warn") => Level::Warn,
        Ok("info") => Level::Info,
        Ok("debug") => Level::Debug,
        _ => Level::Off,
    }
}

/// The active log level: `JUGGLER_LOG` parsed once, or whatever
/// [`set_level`] installed.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => {
            let l = parse_env();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
    }
}

/// Overrides the level programmatically (tests, embedding tools). Wins
/// over `JUGGLER_LOG` from then on.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether messages at `l` are currently emitted.
#[must_use]
pub fn enabled(l: Level) -> bool {
    l != Level::Off && level() >= l
}

/// Emits a `warn`-level diagnostic to stderr when `JUGGLER_LOG` is
/// `warn`, `info`, or `debug`. Arguments follow [`std::format!`].
#[macro_export]
macro_rules! log_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            eprintln!("[warn] {}", format_args!($($arg)*));
        }
    };
}

/// Emits an `info`-level diagnostic to stderr when `JUGGLER_LOG` is
/// `info` or `debug`. Arguments follow [`std::format!`].
#[macro_export]
macro_rules! log_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            eprintln!("[info] {}", format_args!($($arg)*));
        }
    };
}

/// Emits a `debug`-level diagnostic to stderr when `JUGGLER_LOG` is
/// `debug`. Arguments follow [`std::format!`].
#[macro_export]
macro_rules! log_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            eprintln!("[debug] {}", format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_nest_and_off_silences_everything() {
        set_level(Level::Off);
        assert!(!enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert!(!enabled(Level::Off), "Off is never 'emitted'");

        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));

        set_level(Level::Debug);
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));

        set_level(Level::Off);
    }

    #[test]
    fn macros_skip_argument_evaluation_when_off() {
        set_level(Level::Off);
        let evaluated = std::cell::Cell::new(false);
        let probe = || {
            evaluated.set(true);
            "x"
        };
        log_debug!("{}", probe());
        assert!(!evaluated.get(), "disabled log must not evaluate arguments");
    }
}
