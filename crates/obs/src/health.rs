//! Streaming model-health primitives: deterministic drift detectors and
//! declarative error budgets (SLOs).
//!
//! Everything here operates on **fixed-point micro-units** (`1.0` ==
//! [`MICRO`] == `1_000_000`): relative errors, coefficient deviations and
//! thresholds are converted once via [`to_micro`] and every detector
//! update is pure integer arithmetic (`i64`/`i128`, truncating division).
//! That is what makes a health verdict *bit-identical* across worker
//! thread counts, repeat folds, and machines — the same contract the run
//! manifests obey, extended to the component that watches them.
//!
//! Three detector families cover the paper-pipeline failure modes:
//!
//! * [`PageHinkley`] — cumulative-deviation test for sustained mean
//!   shifts in a prediction-error stream.
//! * [`Cusum`] — one-sided cumulative-sum test; the workhorse for
//!   "coefficient silently drifted away from its baseline".
//! * [`EwmaBand`] — exponentially weighted mean/deviation bands for
//!   runtime/size residual outliers; seedable from training holdout
//!   residuals so the band starts calibrated instead of cold.
//!
//! The *policy* side is [`SloSpec`]: a per-workload JSON error budget
//! (max mean/p95 relative error, consecutive-breach and burn-rate
//! limits) that `juggler health` evaluates the folded history against.
//! The typed outcome is [`Verdict`]. The fold itself (which series feed
//! which detector, refit advice) lives in `juggler-core::watchtower` —
//! obs only knows streams, budgets, and verdicts.

use serde::{Deserialize, Serialize, Value};

/// Fixed-point scale: `1.0` (100 % relative error) in micro-units.
pub const MICRO: i64 = 1_000_000;

/// Converts a fraction (e.g. a relative error) to clamped micro-units.
/// `NaN` saturates to `i64::MAX` so a poisoned series reads as maximally
/// drifted instead of silently healthy.
#[must_use]
pub fn to_micro(x: f64) -> i64 {
    if x.is_nan() {
        return i64::MAX;
    }
    let scaled = x * MICRO as f64;
    if scaled >= i64::MAX as f64 {
        i64::MAX
    } else if scaled <= i64::MIN as f64 {
        i64::MIN
    } else {
        scaled.round() as i64
    }
}

/// Renders micro-units as a percentage string (`500000` → `50%`).
#[must_use]
pub fn fmt_micro_pct(micro: i64) -> String {
    crate::format::fmt_sig(micro as f64 / (MICRO as f64 / 100.0), 3) + "%"
}

/// Where a detector first fired: 0-based sample index plus the statistic
/// magnitude (micro-units) at that sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Firing {
    /// 0-based index of the sample that tripped the detector.
    pub sample: u64,
    /// Detector statistic at the firing sample, micro-units.
    pub magnitude_micro: i64,
}

/// Page–Hinkley test for a sustained upward mean shift.
///
/// Classic formulation over a stream `x_t`: track the running mean
/// `μ_t`, accumulate `m_t = Σ (x_i − μ_i − δ)` and its running minimum
/// `M_t`; alarm when `m_t − M_t > λ`. All state is integer (micro-unit
/// samples, `i128` accumulators, truncating mean division), so the
/// firing sample is a pure function of the series.
#[derive(Debug, Clone)]
pub struct PageHinkley {
    delta_micro: i64,
    lambda_micro: i64,
    n: u64,
    sum: i128,
    mh: i128,
    min_mh: i128,
    fired: Option<Firing>,
}

impl PageHinkley {
    /// A detector with slack `delta` and threshold `lambda`, micro-units.
    #[must_use]
    pub fn new(delta_micro: i64, lambda_micro: i64) -> Self {
        PageHinkley {
            delta_micro,
            lambda_micro,
            n: 0,
            sum: 0,
            mh: 0,
            min_mh: 0,
            fired: None,
        }
    }

    /// Feeds one sample; returns `true` the first time the alarm trips.
    pub fn observe(&mut self, x_micro: i64) -> bool {
        self.n += 1;
        self.sum += i128::from(x_micro);
        let mean = self.sum / i128::from(self.n);
        self.mh += i128::from(x_micro) - mean - i128::from(self.delta_micro);
        self.min_mh = self.min_mh.min(self.mh);
        let stat = self.mh - self.min_mh;
        if self.fired.is_none() && stat > i128::from(self.lambda_micro) {
            self.fired = Some(Firing {
                sample: self.n - 1,
                magnitude_micro: i64::try_from(stat).unwrap_or(i64::MAX),
            });
            return true;
        }
        false
    }

    /// First firing, if any.
    #[must_use]
    pub fn fired(&self) -> Option<Firing> {
        self.fired
    }
}

/// One-sided CUSUM: `s_t = max(0, s_{t−1} + x_t − target − slack)`,
/// alarm when `s_t > threshold`. Integer state throughout.
#[derive(Debug, Clone)]
pub struct Cusum {
    target_micro: i64,
    slack_micro: i64,
    threshold_micro: i64,
    s: i128,
    n: u64,
    fired: Option<Firing>,
}

impl Cusum {
    /// A detector testing for upward shifts past `target + slack`.
    #[must_use]
    pub fn new(target_micro: i64, slack_micro: i64, threshold_micro: i64) -> Self {
        Cusum {
            target_micro,
            slack_micro,
            threshold_micro,
            s: 0,
            n: 0,
            fired: None,
        }
    }

    /// Feeds one sample; returns `true` the first time the alarm trips.
    pub fn observe(&mut self, x_micro: i64) -> bool {
        let step =
            i128::from(x_micro) - i128::from(self.target_micro) - i128::from(self.slack_micro);
        self.s = (self.s + step).max(0);
        self.n += 1;
        if self.fired.is_none() && self.s > i128::from(self.threshold_micro) {
            self.fired = Some(Firing {
                sample: self.n - 1,
                magnitude_micro: i64::try_from(self.s).unwrap_or(i64::MAX),
            });
            return true;
        }
        false
    }

    /// First firing, if any.
    #[must_use]
    pub fn fired(&self) -> Option<Firing> {
        self.fired
    }
}

/// EWMA mean/deviation bands with a fixed-point smoothing factor
/// `alpha = num/den`. A sample breaches when it sits more than
/// `k · dev` (floored at `min_band`) from the tracked mean. Deviation is
/// a mean-absolute-deviation EWMA — integer-friendly, no square roots.
#[derive(Debug, Clone)]
pub struct EwmaBand {
    num: i64,
    den: i64,
    k: i64,
    min_band_micro: i64,
    mean: i64,
    dev: i64,
    n: u64,
    observed: u64,
    breaches: u64,
    fired: Option<Firing>,
}

impl EwmaBand {
    /// A band tracker with smoothing `num/den` and width `k · dev`,
    /// floored at `min_band_micro`.
    #[must_use]
    pub fn new(num: i64, den: i64, k: i64, min_band_micro: i64) -> Self {
        assert!(den > 0 && num > 0 && num <= den, "alpha must be in (0, 1]");
        EwmaBand {
            num,
            den,
            k,
            min_band_micro,
            mean: 0,
            dev: 0,
            n: 0,
            observed: 0,
            breaches: 0,
            fired: None,
        }
    }

    /// Warm-starts the mean/deviation state without breach checking —
    /// used to seed the band from training holdout residuals so the
    /// first production runs are judged against a calibrated baseline.
    pub fn seed(&mut self, baseline_micro: &[i64]) {
        for &x in baseline_micro {
            self.update(x);
        }
    }

    fn update(&mut self, x_micro: i64) {
        if self.n == 0 {
            self.mean = x_micro;
            self.dev = 0;
        } else {
            let err = x_micro - self.mean;
            self.mean += self.num * err / self.den;
            self.dev += self.num * (err.abs() - self.dev) / self.den;
        }
        self.n += 1;
    }

    /// Feeds one sample; returns `true` when it falls outside the band.
    /// The sample still updates the band afterwards, so a level shift
    /// breaches a few times and then becomes the new normal (bands flag
    /// outliers; sustained shifts are Page–Hinkley/CUSUM territory).
    pub fn observe(&mut self, x_micro: i64) -> bool {
        let mut breached = false;
        if self.n > 0 {
            let err = (x_micro - self.mean).abs();
            let band = (self.k * self.dev).max(self.min_band_micro);
            if err > band {
                breached = true;
                self.breaches += 1;
                if self.fired.is_none() {
                    // Samples are numbered over `observe` calls only, so
                    // seed data never shifts the reported onset.
                    self.fired = Some(Firing {
                        sample: self.observed,
                        magnitude_micro: err,
                    });
                }
            }
        }
        self.update(x_micro);
        self.observed += 1;
        breached
    }

    /// Samples fed through `observe` (seed data excluded).
    #[must_use]
    pub fn observed_samples(&self) -> u64 {
        self.observed
    }

    /// Total band breaches observed.
    #[must_use]
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// First breach, if any.
    #[must_use]
    pub fn fired(&self) -> Option<Firing> {
        self.fired
    }
}

/// A declarative per-workload error budget (SLO): what prediction
/// quality the stored history must sustain. Parsed from JSON via
/// [`SloSpec::from_json`]; every field has a default so a spec file only
/// states what it tightens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Per-run and window-mean ceiling on the mean relative
    /// time-prediction error (fraction; a run above it *breaches*).
    pub max_mean_time_rel_error: f64,
    /// Ceiling on the window's p95 time relative error (fraction).
    pub max_p95_time_rel_error: f64,
    /// Per-run ceiling on the mean relative size-prediction error.
    pub max_mean_size_rel_error: f64,
    /// Runs may breach at most this many times *in a row* before the
    /// budget verdict escalates to `Drifted`.
    pub max_consecutive_breaches: u32,
    /// Fraction of runs in the window allowed to breach (the error
    /// budget proper). Burn rate = breaching fraction / this.
    pub budget_breach_fraction: f64,
    /// Burn rate at or above which the verdict is at least `Warn`.
    pub warn_burn_rate: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            max_mean_time_rel_error: 0.15,
            max_p95_time_rel_error: 0.35,
            max_mean_size_rel_error: 0.20,
            max_consecutive_breaches: 3,
            budget_breach_fraction: 0.25,
            warn_burn_rate: 0.5,
        }
    }
}

impl SloSpec {
    /// Parses a spec document, starting from the defaults. Unknown keys
    /// are an error (a typoed budget must not silently loosen to the
    /// default), wrong kinds are an error, absent keys keep defaults.
    pub fn from_json(raw: &str) -> Result<Self, String> {
        let doc: Value = serde_json::from_str(raw).map_err(|e| format!("slo spec: {e}"))?;
        let Value::Object(fields) = &doc else {
            return Err("slo spec: expected a JSON object".into());
        };
        let mut slo = SloSpec::default();
        for (key, value) in fields {
            let num = || -> Result<f64, String> {
                match value {
                    Value::Int(n) => Ok(*n as f64),
                    Value::UInt(n) => Ok(*n as f64),
                    Value::Float(x) if x.is_finite() => Ok(*x),
                    _ => Err(format!("slo spec: `{key}` must be a finite number")),
                }
            };
            match key.as_str() {
                "max_mean_time_rel_error" => slo.max_mean_time_rel_error = num()?,
                "max_p95_time_rel_error" => slo.max_p95_time_rel_error = num()?,
                "max_mean_size_rel_error" => slo.max_mean_size_rel_error = num()?,
                "max_consecutive_breaches" => {
                    let n = num()?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(format!("slo spec: `{key}` must be a non-negative integer"));
                    }
                    slo.max_consecutive_breaches = n as u32;
                }
                "budget_breach_fraction" => slo.budget_breach_fraction = num()?,
                "warn_burn_rate" => slo.warn_burn_rate = num()?,
                other => return Err(format!("slo spec: unknown key `{other}`")),
            }
        }
        // num() already rejected non-finite values, so <= is exhaustive.
        if slo.budget_breach_fraction <= 0.0 {
            return Err("slo spec: `budget_breach_fraction` must be positive".into());
        }
        Ok(slo)
    }

    /// One-line deterministic rendering for reports.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "mean<={} p95<={} size<={} consecutive<={} budget_fraction {} warn_burn {}",
            fmt_micro_pct(to_micro(self.max_mean_time_rel_error)),
            fmt_micro_pct(to_micro(self.max_p95_time_rel_error)),
            fmt_micro_pct(to_micro(self.max_mean_size_rel_error)),
            self.max_consecutive_breaches,
            fmt_micro_pct(to_micro(self.budget_breach_fraction)),
            fmt_micro_pct(to_micro(self.warn_burn_rate)),
        )
    }
}

/// The typed outcome of a health evaluation (one model, the budget, or
/// the whole report — worst wins).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Inside budget, no detector fired.
    Healthy,
    /// The budget is burning (or residual bands are breaching) but no
    /// drift detector has confirmed a sustained shift yet.
    Warn {
        /// What raised the warning (`budget_burn`, `ewma_band`, …).
        signal: String,
        /// Magnitude of the warning signal, micro-units.
        value_micro: i64,
    },
    /// A drift detector fired: the model no longer matches reality.
    Drifted {
        /// Which detector fired (`cusum(coeff)`, `page_hinkley(err)`, …).
        detector: String,
        /// Run id (ledger id) of the onset sample.
        onset_run: String,
        /// Detector statistic at onset, micro-units.
        magnitude_micro: i64,
    },
}

impl Verdict {
    /// Severity level: 0 healthy, 1 warn, 2 drifted.
    #[must_use]
    pub fn level(&self) -> u8 {
        match self {
            Verdict::Healthy => 0,
            Verdict::Warn { .. } => 1,
            Verdict::Drifted { .. } => 2,
        }
    }

    /// Short lowercase/uppercase label (`healthy`, `WARN`, `DRIFTED`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Warn { .. } => "WARN",
            Verdict::Drifted { .. } => "DRIFTED",
        }
    }

    /// The more severe of two verdicts (`self` wins ties, so earlier
    /// evaluation order is a deterministic tiebreak).
    #[must_use]
    pub fn worst(self, other: Verdict) -> Verdict {
        if other.level() > self.level() {
            other
        } else {
            self
        }
    }

    /// Deterministic one-line detail rendering.
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            Verdict::Healthy => "healthy".to_owned(),
            Verdict::Warn {
                signal,
                value_micro,
            } => {
                format!("WARN {signal} {}", fmt_micro_pct(*value_micro))
            }
            Verdict::Drifted {
                detector,
                onset_run,
                magnitude_micro,
            } => format!(
                "DRIFTED {detector} at run {onset_run} (magnitude {})",
                fmt_micro_pct(*magnitude_micro)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_micro_clamps_and_rounds() {
        assert_eq!(to_micro(0.0805), 80_500);
        assert_eq!(to_micro(0.5), 500_000);
        assert_eq!(to_micro(-0.25), -250_000);
        assert_eq!(to_micro(f64::NAN), i64::MAX);
        assert_eq!(to_micro(f64::INFINITY), i64::MAX);
        assert_eq!(to_micro(f64::NEG_INFINITY), i64::MIN);
        assert_eq!(to_micro(1e300), i64::MAX);
        assert_eq!(to_micro(4.4e-7), 0, "sub-half-micro jitter rounds away");
    }

    #[test]
    fn page_hinkley_fires_on_a_mean_shift_not_on_noise() {
        let mut ph = PageHinkley::new(5_000, 150_000);
        for _ in 0..50 {
            assert!(!ph.observe(80_000));
        }
        assert!(ph.fired().is_none(), "stationary stream never fires");
        // Mean shift: 8% -> 30%.
        let mut fired_at = None;
        for i in 0..20 {
            if ph.observe(300_000) {
                fired_at = Some(i);
                break;
            }
        }
        let fired_at = fired_at.expect("shift fires");
        assert!(
            fired_at <= 2,
            "fires within two shifted samples: {fired_at}"
        );
        assert!(ph.fired().unwrap().magnitude_micro > 150_000);
    }

    #[test]
    fn page_hinkley_is_replay_deterministic() {
        let series: Vec<i64> = (0..200).map(|i| 70_000 + (i % 7) * 3_000).collect();
        let run = || {
            let mut ph = PageHinkley::new(5_000, 50_000);
            let mut log = Vec::new();
            for &x in &series {
                log.push(ph.observe(x));
            }
            (log, ph.fired())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cusum_fires_at_the_first_large_excursion() {
        let mut c = Cusum::new(0, 10_000, 100_000);
        for _ in 0..30 {
            assert!(!c.observe(1), "1-micro jitter sits inside the slack");
        }
        assert!(c.observe(500_000), "a 50% deviation trips immediately");
        let firing = c.fired().unwrap();
        assert_eq!(firing.sample, 30);
        assert_eq!(firing.magnitude_micro, 490_000);
    }

    #[test]
    fn cusum_accumulates_slow_drift() {
        let mut c = Cusum::new(0, 10_000, 100_000);
        let mut fired = None;
        for i in 0..100 {
            // 3% per run: 20k above slack each step, fires when the
            // excess sum passes 100k.
            if c.observe(30_000) {
                fired = Some(i);
                break;
            }
        }
        assert_eq!(fired, Some(5), "100k excess / 20k per step, strict >");
    }

    #[test]
    fn ewma_band_flags_outliers_and_absorbs_level_shifts() {
        let mut b = EwmaBand::new(1, 4, 4, 20_000);
        for _ in 0..20 {
            assert!(!b.observe(80_000));
        }
        assert!(b.observe(200_000), "12-point jump breaches the band");
        assert_eq!(b.breaches(), 1);
        // Keep feeding the new level: the band re-centres.
        let mut later_breaches = 0;
        for _ in 0..40 {
            if b.observe(200_000) {
                later_breaches += 1;
            }
        }
        assert!(
            later_breaches < 8,
            "band re-centres on the new level ({later_breaches} later breaches)"
        );
    }

    #[test]
    fn ewma_seed_warms_the_band_without_breaching() {
        let mut b = EwmaBand::new(1, 4, 4, 20_000);
        b.seed(&[80_000, 90_000, 70_000, 85_000]);
        assert_eq!(b.breaches(), 0, "seeding never counts breaches");
        assert!(!b.observe(82_000), "in-band first observation");
        assert!(b.observe(400_000), "seeded band still catches outliers");
        assert_eq!(b.observed_samples(), 2, "seed data is not counted");
    }

    #[test]
    fn slo_parses_partial_specs_and_rejects_typos() {
        let slo = SloSpec::from_json(r#"{"max_mean_time_rel_error": 0.05}"#).unwrap();
        assert_eq!(slo.max_mean_time_rel_error, 0.05);
        assert_eq!(
            slo.max_consecutive_breaches,
            SloSpec::default().max_consecutive_breaches
        );
        let err = SloSpec::from_json(r#"{"max_mean_time_err": 0.05}"#).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = SloSpec::from_json(r#"{"max_mean_time_rel_error": "a"}"#).unwrap_err();
        assert!(err.contains("finite number"), "{err}");
        let err = SloSpec::from_json(r#"{"budget_breach_fraction": 0}"#).unwrap_err();
        assert!(err.contains("positive"), "{err}");
        let err = SloSpec::from_json(r#"{"max_consecutive_breaches": 2.5}"#).unwrap_err();
        assert!(err.contains("integer"), "{err}");
    }

    #[test]
    fn slo_summary_is_stable() {
        assert_eq!(
            SloSpec::default().summary(),
            "mean<=15% p95<=35% size<=20% consecutive<=3 budget_fraction 25% warn_burn 50%"
        );
    }

    #[test]
    fn verdict_ordering_and_labels() {
        let warn = Verdict::Warn {
            signal: "budget_burn".into(),
            value_micro: 600_000,
        };
        let drifted = Verdict::Drifted {
            detector: "cusum(coeff)".into(),
            onset_run: "abcd".into(),
            magnitude_micro: 490_000,
        };
        assert_eq!(Verdict::Healthy.level(), 0);
        assert_eq!(warn.level(), 1);
        assert_eq!(drifted.level(), 2);
        assert_eq!(Verdict::Healthy.worst(warn.clone()), warn);
        assert_eq!(warn.clone().worst(drifted.clone()), drifted);
        assert_eq!(drifted.clone().worst(warn.clone()), drifted);
        assert_eq!(warn.detail(), "WARN budget_burn 60%");
        assert_eq!(
            drifted.detail(),
            "DRIFTED cusum(coeff) at run abcd (magnitude 49%)"
        );
    }
}
