//! The on-disk run ledger: a content-addressed store of run manifests
//! under `results/runs/`.
//!
//! The store is deliberately schema-light: it files any JSON document by
//! its caller-supplied content hash (`<first 16 hex chars>.json`), lists
//! what it holds, and resolves unambiguous id prefixes — the *typed*
//! manifest (what goes in the document, what the hash covers, what counts
//! as drift) lives in `juggler-core::provenance`. Keeping storage generic
//! means the store itself never needs to change when the manifest schema
//! grows; summaries below read well-known fields leniently and degrade to
//! placeholders for foreign documents.
//!
//! Recording is idempotent: the same content hashes to the same id and
//! overwrites the same file with identical bytes, so re-recording a run
//! is a no-op — which is exactly the property the cross-run determinism
//! tests pin (bit-identical manifests at any worker-thread count).

use std::io;
use std::path::{Path, PathBuf};

use serde::Value;

/// Number of leading hex characters of the content hash used as the run
/// id (and file stem) — 64 bits, plenty for a local experiment ledger.
pub const RUN_ID_LEN: usize = 16;

/// A content-addressed directory of run-manifest JSON documents.
#[derive(Debug, Clone)]
pub struct LedgerStore {
    root: PathBuf,
}

/// Summary row for one stored run (the `juggler runs list` view). Fields
/// absent from the document degrade to empty/zero rather than erroring,
/// so a store survives schema evolution and foreign files.
#[derive(Debug, Clone)]
pub struct StoredRun {
    /// Run id (file stem; leading [`RUN_ID_LEN`] chars of the hash).
    pub id: String,
    /// Path of the manifest file.
    pub path: PathBuf,
    /// Workload name, if the document declares one.
    pub workload: String,
    /// `(examples, features, iterations)` parameters, when present.
    pub params: (u64, u64, u64),
    /// Number of schedules in the manifest, when present.
    pub schedules: usize,
    /// Mean relative time-prediction error, when present.
    pub mean_time_rel_error: Option<f64>,
    /// Full content hash declared by the document (empty if absent).
    pub content_hash: String,
    /// When the manifest file was recorded (file mtime, nanoseconds since
    /// the Unix epoch; 0 if the filesystem won't say). Ordering metadata
    /// only — deliberately *outside* the content hash, like the envelope.
    pub recorded_unix_ns: u128,
}

/// One directory entry of a [`LedgerStore`]: identity and ordering
/// metadata only, no document parse. The cheap spine of [`LedgerStore::list`]
/// and of bulk readers that bring their own (typed, cached) parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEntryMeta {
    /// Run id (file stem).
    pub id: String,
    /// Path of the document file.
    pub path: PathBuf,
    /// File mtime, nanoseconds since the Unix epoch (0 if unavailable).
    pub recorded_unix_ns: u128,
}

impl LedgerStore {
    /// A store rooted at `root` (created lazily on first record).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LedgerStore { root: root.into() }
    }

    /// The workspace-conventional root, `results/runs` under `base`.
    #[must_use]
    pub fn under(base: &Path) -> Self {
        Self::new(base.join("results").join("runs"))
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Derives the run id from a full content hash.
    #[must_use]
    pub fn id_of(content_hash: &str) -> String {
        content_hash.chars().take(RUN_ID_LEN).collect()
    }

    /// Files `document_json` under the id derived from `content_hash`,
    /// creating the root directory if needed. Returns the file path.
    /// Idempotent for identical content.
    pub fn record(&self, content_hash: &str, document_json: &str) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.root)?;
        let path = self
            .root
            .join(format!("{}.json", Self::id_of(content_hash)));
        std::fs::write(&path, document_json)?;
        Ok(path)
    }

    /// The store's directory entries, newest first: recorded timestamp
    /// descending with the id ascending as tiebreak — a total,
    /// deterministic order regardless of directory iteration order.
    /// Never opens a document, so it costs one `readdir` plus one `stat`
    /// per file.
    pub fn entries(&self) -> io::Result<Vec<LedgerEntryMeta>> {
        let mut out = Vec::new();
        let entries = match std::fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            out.push(LedgerEntryMeta {
                id: stem.to_owned(),
                recorded_unix_ns: recorded_ns(&path),
                path,
            });
        }
        out.sort_by(|a, b| {
            b.recorded_unix_ns
                .cmp(&a.recorded_unix_ns)
                .then_with(|| a.id.cmp(&b.id))
        });
        Ok(out)
    }

    /// All stored runs, newest first (same order as [`Self::entries`]),
    /// with summary fields parsed out of each document. Parse failures
    /// are skipped — the ledger must not die on a stray file.
    pub fn list(&self) -> io::Result<Vec<StoredRun>> {
        let mut out = Vec::new();
        for meta in self.entries()? {
            let Ok(raw) = std::fs::read_to_string(&meta.path) else {
                continue;
            };
            let Ok(doc) = serde_json::from_str::<Value>(&raw) else {
                continue;
            };
            out.push(summarize(&meta.id, &meta.path, &doc, meta.recorded_unix_ns));
        }
        Ok(out)
    }

    /// Resolves a run reference to a manifest path. Accepts an id or
    /// unambiguous id prefix within the store, or a direct path to a
    /// manifest file anywhere.
    pub fn resolve(&self, reference: &str) -> Result<PathBuf, String> {
        let direct = Path::new(reference);
        if direct.is_file() {
            return Ok(direct.to_path_buf());
        }
        let runs = self
            .list()
            .map_err(|e| format!("reading ledger {}: {e}", self.root.display()))?;
        let matches: Vec<&StoredRun> = runs
            .iter()
            .filter(|r| r.id.starts_with(reference))
            .collect();
        match matches.as_slice() {
            [one] => Ok(one.path.clone()),
            [] => Err(format!(
                "no run matching `{reference}` in {} ({} stored)",
                self.root.display(),
                runs.len()
            )),
            many => Err(format!(
                "ambiguous run reference `{reference}`: matches {}",
                many.iter()
                    .map(|r| r.id.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
        }
    }

    /// Loads a run by reference, returning `(path, raw JSON)`.
    pub fn load(&self, reference: &str) -> Result<(PathBuf, String), String> {
        let path = self.resolve(reference)?;
        let raw = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Ok((path, raw))
    }
}

/// File mtime as nanoseconds since the Unix epoch (0 when unavailable).
fn recorded_ns(path: &Path) -> u128 {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
        .map_or(0, |d| d.as_nanos())
}

/// Lenient summary extraction from a manifest document.
fn summarize(id: &str, path: &Path, doc: &Value, recorded_unix_ns: u128) -> StoredRun {
    let content = doc.get("content").unwrap_or(doc);
    let as_u64 = |v: &Value| match v {
        Value::Int(n) => u64::try_from(*n).unwrap_or(0),
        Value::UInt(n) => *n,
        Value::Float(x) if x.is_finite() && *x >= 0.0 => *x as u64,
        _ => 0,
    };
    let params = content.get("params");
    let param = |key: &str| params.and_then(|p| p.get(key)).map_or(0, as_u64);
    let schedules = match content.get("schedules") {
        Some(Value::Array(items)) => items.len(),
        _ => 0,
    };
    let mean_err = content
        .get("predictions")
        .and_then(|p| p.get("mean_time_rel_error"))
        .and_then(|v| match v {
            Value::Float(x) => Some(*x),
            Value::Int(n) => Some(*n as f64),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        });
    let text = |v: Option<&Value>| match v {
        Some(Value::Str(s)) => s.clone(),
        _ => String::new(),
    };
    StoredRun {
        id: id.to_owned(),
        path: path.to_path_buf(),
        workload: text(content.get("workload")),
        params: (param("examples"), param("features"), param("iterations")),
        schedules,
        mean_time_rel_error: mean_err,
        content_hash: text(doc.get("content_hash")),
        recorded_unix_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(name: &str) -> LedgerStore {
        let dir =
            std::env::temp_dir().join(format!("obs_ledger_test_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        LedgerStore::new(dir)
    }

    const DOC: &str = r#"{
        "envelope": {"schema_version": 1},
        "content": {
            "workload": "TINY",
            "params": {"examples": 4000, "features": 800, "iterations": 4},
            "schedules": [{"index": 0}],
            "predictions": {"mean_time_rel_error": 0.0805}
        },
        "content_hash": "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
    }"#;

    #[test]
    fn record_list_resolve_roundtrip() {
        let store = tmp_store("roundtrip");
        let hash = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef";
        let path = store.record(hash, DOC).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "deadbeefdeadbeef.json"
        );
        let runs = store.list().unwrap();
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.id, "deadbeefdeadbeef");
        assert_eq!(r.workload, "TINY");
        assert_eq!(r.params, (4000, 800, 4));
        assert_eq!(r.schedules, 1);
        assert!((r.mean_time_rel_error.unwrap() - 0.0805).abs() < 1e-12);
        assert_eq!(r.content_hash, hash);
        // Prefix resolution.
        assert_eq!(store.resolve("deadbe").unwrap(), path);
        // Direct path resolution.
        assert_eq!(store.resolve(path.to_str().unwrap()).unwrap(), path);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn record_is_idempotent() {
        let store = tmp_store("idempotent");
        let hash = "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff";
        let p1 = store.record(hash, DOC).unwrap();
        let p2 = store.record(hash, DOC).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(store.list().unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_store_lists_empty_and_resolve_reports() {
        let store = tmp_store("missing");
        assert!(store.list().unwrap().is_empty());
        let err = store.resolve("abc").unwrap_err();
        assert!(err.contains("no run matching"), "{err}");
    }

    #[test]
    fn ambiguous_prefix_is_an_error() {
        let store = tmp_store("ambiguous");
        store
            .record("aa00000000000000ffff", "{\"content\":{}}")
            .unwrap();
        store
            .record("aa11111111111111ffff", "{\"content\":{}}")
            .unwrap();
        let err = store.resolve("aa").unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
        assert!(store.resolve("aa0").is_ok());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn list_orders_newest_first_with_id_tiebreak() {
        use std::time::{Duration, SystemTime};
        let store = tmp_store("ordering");
        let base = SystemTime::UNIX_EPOCH + Duration::from_secs(1_700_000_000);
        let set_mtime = |path: &Path, offset_s: u64| {
            let f = std::fs::File::options().write(true).open(path).unwrap();
            f.set_modified(base + Duration::from_secs(offset_s))
                .unwrap();
        };
        // Record out of id order, then pin mtimes: cc oldest, aa newest.
        let p_bb = store
            .record("bb00000000000000ffff", "{\"content\":{}}")
            .unwrap();
        let p_aa = store
            .record("aa00000000000000ffff", "{\"content\":{}}")
            .unwrap();
        let p_cc = store
            .record("cc00000000000000ffff", "{\"content\":{}}")
            .unwrap();
        set_mtime(&p_cc, 10);
        set_mtime(&p_bb, 20);
        set_mtime(&p_aa, 30);
        let ids: Vec<String> = store.list().unwrap().into_iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            ["aa00000000000000", "bb00000000000000", "cc00000000000000"],
            "newest first"
        );
        // Equal mtimes fall back to id ascending.
        set_mtime(&p_aa, 10);
        set_mtime(&p_bb, 10);
        set_mtime(&p_cc, 10);
        let runs = store.list().unwrap();
        let ids: Vec<&str> = runs.iter().map(|r| r.id.as_str()).collect();
        assert_eq!(
            ids,
            ["aa00000000000000", "bb00000000000000", "cc00000000000000"]
        );
        assert!(runs.iter().all(|r| r.recorded_unix_ns > 0));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn foreign_documents_survive_listing() {
        let store = tmp_store("foreign");
        store.record("bb22334455667788", "[1, 2, 3]").unwrap();
        let runs = store.list().unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].workload, "");
        assert_eq!(runs[0].schedules, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }
}
