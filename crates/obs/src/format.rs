//! Shared human-facing number formatting: one implementation of
//! significant-figure rendering, duration tiers and byte tiers, so every
//! report in the workspace prints the same way.

/// Formats `x` with `sig` significant figures, like C's `%.Ng`: plain
/// decimal for moderate magnitudes, scientific (`1.235e5`) outside
/// `[1e-4, 10^sig)`, trailing zeros trimmed. `fmt_sig(2.0, 4)` is `"2"`,
/// not `"2.000"`.
#[must_use]
pub fn fmt_sig(x: f64, sig: usize) -> String {
    let sig = sig.max(1);
    if x == 0.0 {
        return "0".to_string();
    }
    if !x.is_finite() {
        return format!("{x}");
    }
    // Round to `sig` significant digits via the e-format, then re-render.
    // Working from the formatted string avoids a second float rounding
    // step (9.9999 at 3 sig figs must become "10", not "10.0").
    let e = format!("{:.*e}", sig - 1, x);
    let (mantissa, exp) = e.split_once('e').expect("e-format always has an exponent");
    let exp: i32 = exp.parse().expect("exponent is an integer");
    let neg = mantissa.starts_with('-');
    let digits: Vec<u8> = mantissa.bytes().filter(u8::is_ascii_digit).collect();
    let body = if exp < -4 || exp >= sig as i32 {
        // Scientific: trimmed mantissa + exponent.
        let trimmed = trim_digits(&digits);
        let mut s = String::new();
        s.push(trimmed[0] as char);
        if trimmed.len() > 1 {
            s.push('.');
            s.extend(trimmed[1..].iter().map(|&d| d as char));
        }
        format!("{s}e{exp}")
    } else if exp >= 0 {
        // Decimal with `exp + 1` integer digits.
        let int_len = (exp as usize) + 1;
        let mut s = String::new();
        for i in 0..int_len {
            s.push(*digits.get(i).unwrap_or(&b'0') as char);
        }
        if digits.len() > int_len {
            let frac = trim_digits(&digits[int_len..]);
            if !(frac.len() == 1 && frac[0] == b'0') {
                s.push('.');
                s.extend(frac.iter().map(|&d| d as char));
            }
        }
        s
    } else {
        // 0.000ddd form.
        let mut s = String::from("0.");
        for _ in 0..(-exp - 1) {
            s.push('0');
        }
        let frac = trim_digits(&digits);
        s.extend(frac.iter().map(|&d| d as char));
        s
    };
    if neg {
        format!("-{body}")
    } else {
        body
    }
}

/// Trims trailing zeros, keeping at least one digit.
fn trim_digits(digits: &[u8]) -> &[u8] {
    let end = digits.iter().rposition(|&d| d != b'0').map_or(1, |i| i + 1);
    &digits[..end.max(1)]
}

/// Formats a duration given in seconds for human eyes: 3 significant
/// figures, tiered units (`ns`/`µs`/`ms` below one second, `s` below
/// two minutes, then `min` and `h`). The single duration formatter for
/// the workspace — reports must not print raw float seconds, for any
/// input from sub-nanosecond to geological.
#[must_use]
pub fn fmt_duration_s(seconds: f64) -> String {
    if !seconds.is_finite() {
        return format!("{seconds} s");
    }
    if seconds < 0.0 {
        return format!("-{}", fmt_duration_s(-seconds));
    }
    if seconds == 0.0 {
        // Includes -0.0: a zero delta renders unsigned.
        "0 s".to_string()
    } else if seconds < 1e-6 {
        format!("{} ns", fmt_sig(seconds * 1e9, 3))
    } else if seconds < 1e-3 {
        format!("{} µs", fmt_sig(seconds * 1e6, 3))
    } else if seconds < 1.0 {
        format!("{} ms", fmt_sig(seconds * 1e3, 3))
    } else if seconds < 120.0 {
        format!("{} s", fmt_sig(seconds, 3))
    } else if seconds < 7200.0 {
        format!("{} min", fmt_sig(seconds / 60.0, 3))
    } else {
        format!("{} h", fmt_sig(seconds / 3600.0, 3))
    }
}

/// Formats a byte count with decimal (SI) tiers and 3 significant
/// figures: `999 B`, `1.5 kB`, `35.8 GB`, up through `EB` — the full
/// `u64` range renders without falling back to scientific notation.
#[must_use]
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b < 1e3 {
        format!("{bytes} B")
    } else if b < 1e6 {
        format!("{} kB", fmt_sig(b / 1e3, 3))
    } else if b < 1e9 {
        format!("{} MB", fmt_sig(b / 1e6, 3))
    } else if b < 1e12 {
        format!("{} GB", fmt_sig(b / 1e9, 3))
    } else if b < 1e15 {
        format!("{} TB", fmt_sig(b / 1e12, 3))
    } else if b < 1e18 {
        format!("{} PB", fmt_sig(b / 1e15, 3))
    } else {
        format!("{} EB", fmt_sig(b / 1e18, 3))
    }
}

/// Formats a fraction as a percentage with 3 significant figures:
/// `fmt_percent(0.117)` is `"11.7%"`, `fmt_percent(1.5)` is `"150%"`.
/// Values above 100% are legitimate (parallel fan-outs, regressions) and
/// render plainly; `-0.0` renders unsigned as `"0%"`; non-finite inputs
/// stay labelled (`"inf%"`, `"NaN%"`) rather than panicking — profile
/// share columns feed this directly.
#[must_use]
pub fn fmt_percent(fraction: f64) -> String {
    if fraction == 0.0 {
        // Includes -0.0: a zero share renders unsigned.
        return "0%".to_string();
    }
    format!("{}%", fmt_sig(fraction * 100.0, 3))
}

/// Formats an events-per-second rate with 3 significant figures and
/// decimal tiers: `"875/s"`, `"12.3k/s"`, `"4.6M/s"`, `"1.2G/s"`.
/// Negative rates keep their sign; non-finite inputs stay labelled.
#[must_use]
pub fn fmt_rate(per_second: f64) -> String {
    if !per_second.is_finite() {
        return format!("{per_second}/s");
    }
    if per_second < 0.0 {
        return format!("-{}", fmt_rate(-per_second));
    }
    if per_second == 0.0 {
        return "0/s".to_string();
    }
    if per_second < 1e3 {
        format!("{}/s", fmt_sig(per_second, 3))
    } else if per_second < 1e6 {
        format!("{}k/s", fmt_sig(per_second / 1e3, 3))
    } else if per_second < 1e9 {
        format!("{}M/s", fmt_sig(per_second / 1e6, 3))
    } else {
        format!("{}G/s", fmt_sig(per_second / 1e9, 3))
    }
}

/// Formats a *signed* byte difference (ledger diffs report deltas that
/// can exceed `u64` in either direction): `+1.5 kB`, `-46 MB`, `0 B`.
#[must_use]
pub fn fmt_bytes_delta(delta: i128) -> String {
    if delta == 0 {
        return "0 B".to_string();
    }
    let magnitude = delta.unsigned_abs();
    // i128::MIN's magnitude (2^127 ≈ 1.7e38 B) overflows u64; clamp to
    // the printable ceiling — "+18.4 EB"-scale deltas are already a
    // "something is very wrong" signal, exact digits don't matter.
    let rendered = fmt_bytes(u64::try_from(magnitude).unwrap_or(u64::MAX));
    if delta < 0 {
        format!("-{rendered}")
    } else {
        format!("+{rendered}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sig_plain_decimals() {
        assert_eq!(fmt_sig(2.0, 4), "2");
        assert_eq!(fmt_sig(0.5, 4), "0.5");
        assert_eq!(fmt_sig(1.5, 3), "1.5");
        assert_eq!(fmt_sig(123.456, 4), "123.5");
        assert_eq!(fmt_sig(-3.25, 4), "-3.25");
        assert_eq!(fmt_sig(0.0001234, 4), "0.0001234");
    }

    #[test]
    fn sig_scientific_tiers() {
        assert_eq!(fmt_sig(123456.0, 4), "1.235e5");
        assert_eq!(fmt_sig(1.23456e-5, 4), "1.235e-5");
        assert_eq!(fmt_sig(-2e9, 4), "-2e9");
        assert_eq!(fmt_sig(45_961_000.0, 4), "4.596e7");
    }

    #[test]
    fn sig_rounding_can_change_the_exponent() {
        assert_eq!(fmt_sig(9.9999, 3), "10");
        assert_eq!(fmt_sig(0.99999, 3), "1");
        assert_eq!(fmt_sig(99999.0, 3), "1e5");
    }

    #[test]
    fn sig_edge_values() {
        assert_eq!(fmt_sig(0.0, 4), "0");
        assert_eq!(fmt_sig(f64::INFINITY, 4), "inf");
        assert_eq!(fmt_sig(f64::NAN, 4), "NaN");
        assert_eq!(fmt_sig(7.0, 1), "7");
    }

    #[test]
    fn duration_tiers() {
        assert_eq!(fmt_duration_s(0.0), "0 s");
        assert_eq!(fmt_duration_s(0.000123), "123 µs");
        assert_eq!(fmt_duration_s(0.0123), "12.3 ms");
        assert_eq!(fmt_duration_s(0.9994), "999 ms");
        assert_eq!(fmt_duration_s(1.0), "1 s");
        assert_eq!(fmt_duration_s(30.0), "30 s");
        assert_eq!(fmt_duration_s(90.0), "90 s");
        assert_eq!(fmt_duration_s(150.0), "2.5 min");
        assert_eq!(fmt_duration_s(7200.0), "2 h");
        assert_eq!(fmt_duration_s(-0.5), "-500 ms");
    }

    #[test]
    fn duration_extreme_inputs_never_print_raw_floats() {
        // Sub-microsecond and sub-nanosecond.
        assert_eq!(fmt_duration_s(5e-7), "500 ns");
        assert_eq!(fmt_duration_s(1.23e-9), "1.23 ns");
        assert_eq!(fmt_duration_s(7.5e-13), "0.00075 ns");
        // Just under each tier boundary.
        assert_eq!(fmt_duration_s(9.994e-7), "999 ns");
        assert_eq!(fmt_duration_s(9.994e-4), "999 µs");
        // Negative deltas mirror the positive tiers, including -0.0.
        assert_eq!(fmt_duration_s(-5e-7), "-500 ns");
        assert_eq!(fmt_duration_s(-3600.0), "-60 min");
        assert_eq!(fmt_duration_s(-0.0), "0 s");
        // Huge and non-finite inputs stay tiered / labelled.
        assert_eq!(fmt_duration_s(1e9), "2.78e5 h");
        assert_eq!(fmt_duration_s(f64::INFINITY), "inf s");
        assert_eq!(fmt_duration_s(f64::NAN), "NaN s");
        // Subnormal: must not panic and must carry a unit.
        assert!(fmt_duration_s(f64::MIN_POSITIVE).ends_with(" ns"));
    }

    #[test]
    fn byte_tiers() {
        assert_eq!(fmt_bytes(999), "999 B");
        assert_eq!(fmt_bytes(1_500), "1.5 kB");
        assert_eq!(fmt_bytes(45_961_000), "46 MB");
        assert_eq!(fmt_bytes(35_800_000_000), "35.8 GB");
    }
    #[test]
    fn byte_tiers_extreme_inputs() {
        assert_eq!(fmt_bytes(2_500_000_000_000), "2.5 TB");
        assert_eq!(fmt_bytes(7_000_000_000_000_000), "7 PB");
        // 1 EiB = 2^60 bytes.
        assert_eq!(fmt_bytes(1u64 << 60), "1.15 EB");
        assert_eq!(fmt_bytes(u64::MAX), "18.4 EB");
    }

    #[test]
    fn percent_edge_cases_are_pinned() {
        assert_eq!(fmt_percent(0.117), "11.7%");
        assert_eq!(fmt_percent(0.0), "0%");
        assert_eq!(fmt_percent(-0.0), "0%", "-0.0 renders unsigned");
        assert_eq!(fmt_percent(1.0), "100%");
        assert_eq!(fmt_percent(1.5), "150%", ">100% is legitimate");
        assert_eq!(fmt_percent(23.456), "2.35e3%");
        assert_eq!(fmt_percent(-0.05), "-5%");
        assert_eq!(fmt_percent(f64::INFINITY), "inf%");
        assert_eq!(fmt_percent(f64::NEG_INFINITY), "-inf%");
        assert_eq!(fmt_percent(f64::NAN), "NaN%");
        assert_eq!(fmt_percent(0.00001234), "0.00123%");
    }

    #[test]
    fn rate_tiers_and_edge_cases_are_pinned() {
        assert_eq!(fmt_rate(0.0), "0/s");
        assert_eq!(fmt_rate(-0.0), "0/s", "-0.0 renders unsigned");
        assert_eq!(fmt_rate(875.0), "875/s");
        assert_eq!(fmt_rate(12_345.0), "12.3k/s");
        assert_eq!(fmt_rate(4_600_000.0), "4.6M/s");
        assert_eq!(fmt_rate(1.2e9), "1.2G/s");
        assert_eq!(fmt_rate(-875.0), "-875/s");
        assert_eq!(fmt_rate(f64::INFINITY), "inf/s");
        assert_eq!(fmt_rate(f64::NAN), "NaN/s");
        assert_eq!(fmt_rate(0.25), "0.25/s");
    }

    #[test]
    fn byte_deltas_are_signed() {
        assert_eq!(fmt_bytes_delta(0), "0 B");
        assert_eq!(fmt_bytes_delta(1_500), "+1.5 kB");
        assert_eq!(fmt_bytes_delta(-45_961_000), "-46 MB");
        assert_eq!(fmt_bytes_delta(i128::from(u64::MAX)), "+18.4 EB");
        // Beyond-u64 magnitudes clamp instead of panicking.
        assert_eq!(fmt_bytes_delta(i128::MAX), "+18.4 EB");
        assert_eq!(fmt_bytes_delta(i128::MIN), "-18.4 EB");
    }
}
