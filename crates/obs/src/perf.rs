//! The perf-regression gate: compares fresh `BENCH_*.json` output
//! against committed baseline specs in `results/baselines/`.
//!
//! A baseline spec pairs a frozen copy of a benchmark artifact with a
//! list of [`Check`]s over dotted JSON paths. Checks gate the *stable*
//! facts a benchmark asserts (overhead percentages, budget booleans,
//! artifact-identity flags) rather than raw wall-clock seconds, which
//! vary with host load — so the gate stays meaningful on a laptop and
//! in CI alike. `juggler perf-report` evaluates every spec and exits
//! nonzero when any check fails; `scripts/refresh_baselines.sh` is the
//! only sanctioned way to move a baseline, keeping churn explicit.

use serde::Value;

use crate::format::fmt_sig;

/// How a single metric is gated against its baseline.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOp {
    /// Fresh value must equal the baseline value exactly (numeric
    /// comparison is kind-insensitive: `5` matches `5.0`).
    Equals,
    /// Fresh value must not exceed `limit` (absolute ceiling,
    /// independent of the baseline value).
    Max(f64),
    /// Fresh value must be at least `limit`.
    Min(f64),
    /// Fresh value must sit within `max(tol_abs, tol_rel * |baseline|)`
    /// of the baseline value.
    Band {
        /// Absolute tolerance (same unit as the metric).
        tol_abs: f64,
        /// Relative tolerance as a fraction of the baseline magnitude.
        tol_rel: f64,
    },
}

/// One gated metric: a dotted path into the benchmark JSON plus the op.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Dotted path, e.g. `engine_batch.overhead_pct`.
    pub path: String,
    /// The gate applied at that path.
    pub op: CheckOp,
}

impl Check {
    /// Convenience constructor.
    #[must_use]
    pub fn new(path: &str, op: CheckOp) -> Self {
        Check {
            path: path.to_owned(),
            op,
        }
    }
}

/// A committed baseline: the source artifact name, the checks, and the
/// frozen benchmark document they gate against.
#[derive(Debug, Clone)]
pub struct BaselineSpec {
    /// Name of the benchmark artifact this gates, e.g.
    /// `BENCH_metrics_overhead.json`.
    pub source: String,
    /// The gates.
    pub checks: Vec<Check>,
    /// Frozen copy of the benchmark document at baseline time.
    pub baseline: Value,
}

/// Verdict for one evaluated check.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Dotted path of the gated metric.
    pub path: String,
    /// Human-readable account of the comparison.
    pub detail: String,
    /// Whether the check passed.
    pub pass: bool,
}

/// All check outcomes for one benchmark artifact.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Source artifact name.
    pub source: String,
    /// Per-check verdicts, in spec order.
    pub outcomes: Vec<CheckOutcome>,
}

impl BenchReport {
    /// Whether every check passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.pass)
    }
}

/// The full perf-report: one [`BenchReport`] per baseline spec.
#[derive(Debug, Clone, Default)]
pub struct PerfReport {
    /// Per-benchmark reports, in evaluation order.
    pub benches: Vec<BenchReport>,
}

impl PerfReport {
    /// Whether any check anywhere failed.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.benches.iter().any(|b| !b.passed())
    }

    /// Deterministic human-readable rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from("perf-report\n");
        for bench in &self.benches {
            let verdict = if bench.passed() { "ok" } else { "REGRESSION" };
            out.push_str(&format!("  {} .. {verdict}\n", bench.source));
            for o in &bench.outcomes {
                let mark = if o.pass { "pass" } else { "FAIL" };
                out.push_str(&format!("    [{mark}] {}: {}\n", o.path, o.detail));
            }
        }
        let (total, failed) = self.benches.iter().fold((0usize, 0usize), |(t, f), b| {
            (
                t + b.outcomes.len(),
                f + b.outcomes.iter().filter(|o| !o.pass).count(),
            )
        });
        if failed == 0 {
            out.push_str(&format!("  {total} checks passed\n"));
        } else {
            out.push_str(&format!("  {failed} of {total} checks FAILED\n"));
        }
        out
    }
}

/// Names the phases behind a throughput regression: when `bench` has a
/// tripped [`CheckOp::Min`] check and both the frozen baseline document
/// and the fresh artifact embed a `profile` key (a canonical
/// [`crate::prof::Profile`] JSON tree), the two profiles are diffed
/// node-by-node and the `top` largest per-phase slowdowns are returned,
/// rendered one per line. `None` when nothing tripped or either side
/// carries no profile — the attribution is best-effort and never turns
/// a clean report into a failure.
#[must_use]
pub fn regression_attribution(
    spec: &BaselineSpec,
    fresh: &Value,
    bench: &BenchReport,
    top: usize,
) -> Option<Vec<String>> {
    let min_tripped = spec
        .checks
        .iter()
        .zip(&bench.outcomes)
        .any(|(check, outcome)| matches!(check.op, CheckOp::Min(_)) && !outcome.pass);
    if !min_tripped {
        return None;
    }
    let base = crate::prof::Profile::from_json_value(spec.baseline.get("profile")?).ok()?;
    let new = crate::prof::Profile::from_json_value(fresh.get("profile")?).ok()?;
    let lines = crate::prof::ProfileDiff::between(&base, &new).top_regressed(top);
    if lines.is_empty() {
        return None;
    }
    Some(lines)
}

impl BaselineSpec {
    /// A spec from its parts.
    #[must_use]
    pub fn new(source: &str, checks: Vec<Check>, baseline: Value) -> Self {
        BaselineSpec {
            source: source.to_owned(),
            checks,
            baseline,
        }
    }

    /// Pretty-printed JSON for committing under `results/baselines/`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let checks: Vec<Value> = self
            .checks
            .iter()
            .map(|c| {
                let mut fields = vec![("path".to_owned(), Value::Str(c.path.clone()))];
                match &c.op {
                    CheckOp::Equals => fields.push(("op".to_owned(), Value::Str("equals".into()))),
                    CheckOp::Max(limit) => {
                        fields.push(("op".to_owned(), Value::Str("max".into())));
                        fields.push(("limit".to_owned(), Value::Float(*limit)));
                    }
                    CheckOp::Min(limit) => {
                        fields.push(("op".to_owned(), Value::Str("min".into())));
                        fields.push(("limit".to_owned(), Value::Float(*limit)));
                    }
                    CheckOp::Band { tol_abs, tol_rel } => {
                        fields.push(("op".to_owned(), Value::Str("band".into())));
                        fields.push(("tol_abs".to_owned(), Value::Float(*tol_abs)));
                        fields.push(("tol_rel".to_owned(), Value::Float(*tol_rel)));
                    }
                }
                Value::Object(fields)
            })
            .collect();
        let doc = Value::Object(vec![
            ("source".to_owned(), Value::Str(self.source.clone())),
            ("checks".to_owned(), Value::Array(checks)),
            ("baseline".to_owned(), self.baseline.clone()),
        ]);
        let mut text = serde_json::to_string_pretty(&doc).expect("Value always serializes");
        text.push('\n');
        text
    }

    /// Parses a committed spec document.
    pub fn from_json(raw: &str) -> Result<Self, String> {
        let doc: Value = serde_json::from_str(raw).map_err(|e| format!("baseline spec: {e}"))?;
        let source = match doc.get("source") {
            Some(Value::Str(s)) => s.clone(),
            _ => return Err("baseline spec: missing `source`".into()),
        };
        let baseline = doc
            .get("baseline")
            .cloned()
            .ok_or("baseline spec: missing `baseline`")?;
        let mut checks = Vec::new();
        let Some(Value::Array(raw_checks)) = doc.get("checks") else {
            return Err("baseline spec: missing `checks` array".into());
        };
        for c in raw_checks {
            let path = match c.get("path") {
                Some(Value::Str(p)) => p.clone(),
                _ => return Err("baseline spec: check missing `path`".into()),
            };
            let op_name = match c.get("op") {
                Some(Value::Str(o)) => o.clone(),
                _ => return Err(format!("baseline spec: check `{path}` missing `op`")),
            };
            let num = |key: &str| -> Result<f64, String> {
                c.get(key).and_then(as_f64).ok_or(format!(
                    "baseline spec: check `{path}` op `{op_name}` missing `{key}`"
                ))
            };
            let op = match op_name.as_str() {
                "equals" => CheckOp::Equals,
                "max" => CheckOp::Max(num("limit")?),
                "min" => CheckOp::Min(num("limit")?),
                "band" => CheckOp::Band {
                    tol_abs: num("tol_abs")?,
                    tol_rel: num("tol_rel")?,
                },
                other => return Err(format!("baseline spec: unknown op `{other}`")),
            };
            checks.push(Check { path, op });
        }
        Ok(BaselineSpec {
            source,
            checks,
            baseline,
        })
    }

    /// Evaluates every check against a fresh benchmark document.
    #[must_use]
    pub fn evaluate(&self, fresh: &Value) -> BenchReport {
        let outcomes = self
            .checks
            .iter()
            .map(|check| {
                let got = lookup(fresh, &check.path);
                let base = lookup(&self.baseline, &check.path);
                evaluate_check(check, base, got)
            })
            .collect();
        BenchReport {
            source: self.source.clone(),
            outcomes,
        }
    }
}

fn evaluate_check(check: &Check, base: Option<&Value>, got: Option<&Value>) -> CheckOutcome {
    let path = check.path.clone();
    let Some(got) = got else {
        return CheckOutcome {
            path,
            detail: "missing from fresh benchmark output".into(),
            pass: false,
        };
    };
    let (pass, detail) = match &check.op {
        CheckOp::Equals => match base {
            Some(base) => {
                let eq = values_equal(base, got);
                (
                    eq,
                    format!("{} == baseline {}", render_value(got), render_value(base)),
                )
            }
            None => (false, "missing from baseline document".into()),
        },
        CheckOp::Max(limit) => match as_f64(got) {
            Some(x) => (
                x <= *limit,
                format!("{} <= limit {}", fmt_sig(x, 4), fmt_sig(*limit, 4)),
            ),
            None => (false, format!("{} is not numeric", render_value(got))),
        },
        CheckOp::Min(limit) => match as_f64(got) {
            Some(x) => (
                x >= *limit,
                format!("{} >= limit {}", fmt_sig(x, 4), fmt_sig(*limit, 4)),
            ),
            None => (false, format!("{} is not numeric", render_value(got))),
        },
        CheckOp::Band { tol_abs, tol_rel } => match (base.and_then(as_f64), as_f64(got)) {
            (Some(b), Some(x)) => {
                let tol = tol_abs.max(tol_rel * b.abs());
                (
                    (x - b).abs() <= tol,
                    format!(
                        "{} within {} of baseline {}",
                        fmt_sig(x, 4),
                        fmt_sig(tol, 4),
                        fmt_sig(b, 4)
                    ),
                )
            }
            _ => (false, "baseline or fresh value not numeric".into()),
        },
    };
    CheckOutcome { path, detail, pass }
}

/// Resolves a dotted path (`a.b.c`) inside a JSON document.
#[must_use]
pub fn lookup<'a>(doc: &'a Value, path: &str) -> Option<&'a Value> {
    let mut cur = doc;
    for segment in path.split('.') {
        cur = cur.get(segment)?;
    }
    Some(cur)
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(n) => Some(*n as f64),
        Value::UInt(n) => Some(*n as f64),
        Value::Float(x) => Some(*x),
        _ => None,
    }
}

/// Kind-insensitive equality: numerics compare as `f64`, everything
/// else structurally.
fn values_equal(a: &Value, b: &Value) -> bool {
    match (as_f64(a), as_f64(b)) {
        (Some(x), Some(y)) => x == y,
        _ => match (a, b) {
            (Value::Str(x), Value::Str(y)) => x == y,
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Null, Value::Null) => true,
            _ => false,
        },
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Float(x) => fmt_sig(*x, 4),
        Value::Str(s) => format!("\"{s}\""),
        other => serde_json::to_string(other).unwrap_or_else(|_| other.kind().to_owned()),
    }
}

/// The default gate policy for the workspace's benchmark artifacts.
///
/// Returns `None` for unknown artifacts (they are reported but not
/// gated). Policy rationale: overhead *percentages* and identity
/// *booleans* are functions of code, not of host speed, so they are
/// safe to gate; raw seconds are not gated at all.
#[must_use]
pub fn default_checks(bench: &str) -> Option<Vec<Check>> {
    let overhead_common = |engine_band_abs: f64| {
        vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("reps", CheckOp::Equals),
            Check::new("budget_pct", CheckOp::Equals),
            Check::new("within_budget", CheckOp::Equals),
            Check::new("offline_training.overhead_pct", CheckOp::Max(5.0)),
            Check::new(
                "engine_batch.overhead_pct",
                CheckOp::Band {
                    tol_abs: engine_band_abs,
                    tol_rel: 1.0,
                },
            ),
        ]
    };
    match bench {
        "metrics_overhead" => Some(overhead_common(8.0)),
        "trace_overhead" => Some(overhead_common(25.0)),
        // Armed-but-idle chaos machinery on the fault-free hot path: the
        // recorded overhead percentage must stay under the 5 % budget.
        "chaos_overhead" => Some(vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("reps", CheckOp::Equals),
            Check::new("budget_pct", CheckOp::Equals),
            Check::new("within_budget", CheckOp::Equals),
            // The default-policy armed state is the one every fault-free
            // run carries: gate it to the declared 5 % budget. The
            // speculation-armed row is opt-in and reported but not gated
            // (like trace_overhead's jittery engine batch).
            Check::new("armed_idle.overhead_pct", CheckOp::Max(5.0)),
        ]),
        // Tenancy machinery for a lone application: the single-tenant
        // fast path is the path every one-entry spec takes, so it is
        // gated to the 5 % budget. The interleaved lone-active row
        // (weightless ghost) is opt-in and reported but not gated.
        "tenants_overhead" => Some(vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("reps", CheckOp::Equals),
            Check::new("budget_pct", CheckOp::Equals),
            Check::new("within_budget", CheckOp::Equals),
            Check::new("single_tenant.overhead_pct", CheckOp::Max(5.0)),
        ]),
        // Phase-profiler tax on the training pipeline. The scope call
        // sites are always compiled in, so the measurable contrast is
        // recording on vs off: gate the *enabled* overhead to the
        // declared 5 % budget (per-run granularity keeps it small).
        // The armed-idle row (disabled profiler, one relaxed atomic
        // load per call site) is a nanoseconds-scale micro-measurement,
        // reported for visibility but too jittery to pin.
        "profile_overhead" => Some(vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("reps", CheckOp::Equals),
            Check::new("budget_pct", CheckOp::Equals),
            Check::new("within_budget", CheckOp::Equals),
            Check::new("enabled.overhead_pct", CheckOp::Max(5.0)),
        ]),
        // Health-watchtower fold cost over a synthetic 100-manifest
        // ledger, relative to one offline training run: the fold must
        // stay under the 5 % budget so `juggler watch` is cheap enough
        // to run after every training sweep.
        "health_overhead" => Some(vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("manifests", CheckOp::Equals),
            Check::new("budget_pct", CheckOp::Equals),
            Check::new("within_budget", CheckOp::Equals),
            Check::new("fold.overhead_pct", CheckOp::Max(5.0)),
        ]),
        "training_parallel" => Some(vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("reps", CheckOp::Equals),
            Check::new("artifacts_identical", CheckOp::Equals),
        ]),
        // Single-run simulator throughput vs the frozen pre-rework
        // constants. The workload shape, the frozen constants, and the
        // determinism flag must not drift. The speedup bar is a
        // regression trip-wire, NOT the ≥3× achievement bar: the fresh
        // run is re-measured at check time on a shared box whose noisy
        // neighbours inflate the fresh seconds (the frozen denominator
        // cannot move), and sustained contention has been observed to
        // deflate a calm-window 2.9× to ~1.55×. The bar sits below that
        // worst observed window, so it only trips when the hot path
        // loses the rework's win outright (a >2× slowdown at equal
        // contention) — calm-window throughput is recorded in the
        // committed artifact, where drift is visible in review.
        "sim_throughput" => Some(vec![
            Check::new("workload", CheckOp::Equals),
            Check::new("machines", CheckOp::Equals),
            Check::new("tasks_per_run", CheckOp::Equals),
            Check::new("digests_stable", CheckOp::Equals),
            Check::new("run_only.pre_pr_seconds", CheckOp::Equals),
            Check::new("grid_cell.pre_pr_seconds", CheckOp::Equals),
            Check::new("run_only.speedup_vs_pre_pr", CheckOp::Min(1.3)),
            Check::new("grid_cell.speedup_vs_pre_pr", CheckOp::Min(1.3)),
        ]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(overhead: f64, within: bool) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "workload": "LOR",
                "reps": 9,
                "budget_pct": 5.0,
                "within_budget": {within},
                "offline_training": {{"overhead_pct": -0.53}},
                "engine_batch": {{"overhead_pct": {overhead}}}
            }}"#
        ))
        .unwrap()
    }

    fn spec() -> BaselineSpec {
        BaselineSpec::new(
            "BENCH_metrics_overhead.json",
            default_checks("metrics_overhead").unwrap(),
            bench_doc(1.85, true),
        )
    }

    #[test]
    fn identical_run_passes() {
        let report = spec().evaluate(&bench_doc(1.85, true));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn small_timing_noise_passes() {
        let report = spec().evaluate(&bench_doc(3.4, true));
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn budget_blowout_fails() {
        let report = spec().evaluate(&bench_doc(22.0, false));
        assert!(!report.passed());
        let failed: Vec<&str> = report
            .outcomes
            .iter()
            .filter(|o| !o.pass)
            .map(|o| o.path.as_str())
            .collect();
        assert!(failed.contains(&"within_budget"), "{failed:?}");
        assert!(failed.contains(&"engine_batch.overhead_pct"), "{failed:?}");
    }

    #[test]
    fn missing_metric_fails() {
        let fresh: Value = serde_json::from_str(r#"{"workload": "LOR"}"#).unwrap();
        let report = spec().evaluate(&fresh);
        assert!(!report.passed());
        let missing = report
            .outcomes
            .iter()
            .find(|o| o.path == "reps")
            .expect("reps outcome");
        assert!(missing.detail.contains("missing"), "{}", missing.detail);
    }

    #[test]
    fn spec_json_roundtrip() {
        let original = spec();
        let parsed = BaselineSpec::from_json(&original.to_json()).unwrap();
        assert_eq!(parsed.source, original.source);
        assert_eq!(parsed.checks, original.checks);
        // The re-parsed spec gates identically.
        assert!(parsed.evaluate(&bench_doc(1.85, true)).passed());
        assert!(!parsed.evaluate(&bench_doc(40.0, true)).passed());
    }

    #[test]
    fn equals_is_kind_insensitive() {
        let base: Value = serde_json::from_str(r#"{"reps": 9}"#).unwrap();
        let fresh: Value = serde_json::from_str(r#"{"reps": 9.0}"#).unwrap();
        let spec = BaselineSpec::new("x", vec![Check::new("reps", CheckOp::Equals)], base);
        assert!(spec.evaluate(&fresh).passed());
    }

    #[test]
    fn lookup_walks_nested_paths() {
        let doc: Value = serde_json::from_str(r#"{"a": {"b": {"c": 7}}}"#).unwrap();
        assert!(matches!(lookup(&doc, "a.b.c"), Some(Value::Int(7))));
        assert!(lookup(&doc, "a.b.missing").is_none());
    }

    #[test]
    fn render_shows_regression_summary() {
        let mut report = PerfReport::default();
        report
            .benches
            .push(spec().evaluate(&bench_doc(40.0, false)));
        let text = report.render();
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("FAILED"), "{text}");
        let ok = PerfReport {
            benches: vec![spec().evaluate(&bench_doc(1.85, true))],
        };
        assert!(ok.render().contains("checks passed"));
    }

    #[test]
    fn profile_overhead_policy_gates_enabled_row_only() {
        let checks = default_checks("profile_overhead").unwrap();
        assert!(checks
            .iter()
            .any(|c| c.path == "enabled.overhead_pct" && c.op == CheckOp::Max(5.0)));
        assert!(
            !checks.iter().any(|c| c.path.starts_with("armed_idle.")),
            "the armed-idle micro row is informational, not gated"
        );
    }

    #[test]
    fn health_overhead_policy_gates_fold_cost() {
        let checks = default_checks("health_overhead").unwrap();
        assert!(checks
            .iter()
            .any(|c| c.path == "fold.overhead_pct" && c.op == CheckOp::Max(5.0)));
        assert!(checks
            .iter()
            .any(|c| c.path == "manifests" && c.op == CheckOp::Equals));
        assert!(
            !checks.iter().any(|c| c.path.contains("seconds")),
            "raw seconds are never gated"
        );
    }

    fn throughput_doc(speedup: f64, sim_ns: u64) -> Value {
        let profile = crate::prof::Profile {
            roots: vec![crate::prof::ProfileNode {
                name: "sim".to_owned(),
                calls: 1,
                total_ns: sim_ns,
                self_ns: sim_ns,
                counters: Vec::new(),
                children: Vec::new(),
            }],
        };
        Value::Object(vec![
            (
                "run_only".to_owned(),
                Value::Object(vec![(
                    "speedup_vs_pre_pr".to_owned(),
                    Value::Float(speedup),
                )]),
            ),
            ("profile".to_owned(), profile.to_json_value()),
        ])
    }

    #[test]
    fn regression_attribution_names_slow_phases_on_tripped_min() {
        let spec = BaselineSpec::new(
            "BENCH_sim_throughput.json",
            vec![Check::new("run_only.speedup_vs_pre_pr", CheckOp::Min(1.3))],
            throughput_doc(2.0, 100),
        );
        let fresh = throughput_doc(1.0, 250);
        let bench = spec.evaluate(&fresh);
        assert!(!bench.passed());
        let lines = regression_attribution(&spec, &fresh, &bench, 3).expect("attribution lines");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("sim:"), "{lines:?}");

        // A passing report produces no attribution, even though the fresh
        // profile is slower.
        let ok = throughput_doc(2.5, 250);
        let bench_ok = spec.evaluate(&ok);
        assert!(bench_ok.passed());
        assert!(regression_attribution(&spec, &ok, &bench_ok, 3).is_none());
    }
}
