#![warn(missing_docs)]
//! Umbrella crate for the Juggler reproduction.
//!
//! Re-exports every member crate under one roof so that examples and
//! cross-crate integration tests can use a single dependency. Library users
//! who only need a subset should depend on the member crates directly.

pub use baselines;
pub use cluster_sim;
pub use dagflow;
pub use instrument;
pub use juggler;
pub use modeling;
pub use obs;
pub use workloads;
