//! `juggler` — command-line front end for the Juggler reproduction.
//!
//! ```text
//! juggler list                               # available workloads
//! juggler train LOR --out lor.json           # offline training -> artifact
//! juggler recommend lor.json -e 70000 -f 50000 [--ram-gb 32]
//! juggler schedules SVM                      # Table 2 view for one workload
//! juggler sweep SVM --schedule 1             # cost on 1..12 machines
//! juggler dot LOR > lor.dot                  # Graphviz DAG export
//! juggler trace SVM --machines 4             # Gantt + Chrome trace JSON + stage timings
//! juggler doctor KMEANS                      # model-quality & decision diagnostics
//! juggler metrics LOR --format prom          # framework metrics export
//! ```

use std::process::ExitCode;

use juggler_suite::cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions, TraceConfig};
use juggler_suite::dagflow::to_dot;
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainedJuggler, TrainingConfig};
use juggler_suite::obs;
use juggler_suite::workloads::{all_workloads, KMeans, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "list" => cmd_list(),
        "train" => cmd_train(rest),
        "train-all" => cmd_train_all(rest),
        "recommend" => cmd_recommend(rest),
        "schedules" => cmd_schedules(rest),
        "sweep" => cmd_sweep(rest),
        "dot" => cmd_dot(rest),
        "trace" => cmd_trace(rest),
        "doctor" => cmd_doctor(rest),
        "metrics" => cmd_metrics(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
juggler — autonomous cost optimization for iterative big-data applications

USAGE:
  juggler list
  juggler train <WORKLOAD> [--out FILE] [--threads N]
  juggler train-all [--out-dir DIR] [--threads N]
  juggler recommend <ARTIFACT.json> -e <EXAMPLES> -f <FEATURES> [--ram-gb N]
  juggler schedules <WORKLOAD>
  juggler sweep <WORKLOAD> [--schedule N | --ops \"p(1) u(1) p(2)\"]
  juggler dot <WORKLOAD> [--schedule N]
  juggler trace <WORKLOAD> [--machines N] [--width N] [--out FILE]
                 [--jsonl FILE] [--no-pipeline] [--threads N]
  juggler doctor <WORKLOAD> [--threads N] [--timings]
  juggler metrics <WORKLOAD> [--format prom|json] [--timings] [--threads N]

WORKLOAD: KMEANS | LIR | LOR | PCA | RFC | SVM

`doctor` trains the workload with the metrics registry enabled, validates
every Pareto option's predicted time/size against a simulated run, and
prints model-quality (per-model LOO-CV winner and error) and decision
(hotspot accept/reject reasons) diagnostics. `metrics` runs the same flow
and exports the registry (Prometheus text by default); --timings includes
host wall-clock gauges, which makes the output non-deterministic.

--threads 0 (the default) auto-sizes the experiment worker pool from the
JUGGLER_THREADS environment variable or the machine's parallelism;
--threads 1 forces sequential runs. Artifacts are bit-identical either
way.";

fn find_workload(name: &str) -> Result<Box<dyn Workload>, String> {
    let mut pool = all_workloads();
    pool.push(Box::new(KMeans::default()));
    pool.into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload `{name}` (try `juggler list`)"))
}

/// Extracts `--flag value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<6} {:>9} {:>9} {:>6} {:>10}",
        "name", "examples", "features", "iters", "input"
    );
    let mut pool = all_workloads();
    pool.push(Box::new(KMeans::default()));
    for w in pool {
        let p = w.paper_params();
        println!(
            "{:<6} {:>9} {:>9} {:>6} {:>9.1}G",
            w.name(),
            p.examples,
            p.features,
            p.iterations,
            p.input_bytes() as f64 / 1e9
        );
    }
    Ok(())
}

/// Parses the shared `--threads N` flag (0 = automatic).
fn threads_flag(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1) {
            Some(t) => parse_num(t, "--threads"),
            None => Err("--threads requires a value".into()),
        },
        None => Ok(0),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("train needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    eprintln!("training Juggler for {} (four offline stages)...", w.name());
    let trained = OfflineTraining::run(w.as_ref(), &config).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&trained).map_err(|e| e.to_string())?;
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} schedules, memory factor {:.3}, training cost {:.1} machine-min",
                trained.schedules.len(),
                trained.memory_factor.factor,
                trained.costs.total_machine_minutes()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_train_all(args: &[String]) -> Result<(), String> {
    let threads = threads_flag(args)?;
    let out_dir = flag(args, "--out-dir");
    let ws = all_workloads();
    eprintln!(
        "training {} workloads on {} worker(s)...",
        ws.len(),
        juggler_suite::juggler::resolve_threads(threads)
    );
    // Whole workloads fan across the pool; each training then runs its
    // own stages sequentially so the pool is not oversubscribed.
    let results =
        juggler_suite::juggler::try_run_indexed::<_, String, _>(ws.len(), threads, |i| {
            let config = TrainingConfig {
                threads: 1,
                ..TrainingConfig::default()
            };
            OfflineTraining::run(ws[i].as_ref(), &config)
                .map_err(|e| format!("{}: {e}", ws[i].name()))
        })?;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    }
    for trained in &results {
        println!(
            "{:<5} {} schedules, memory factor {:.3}, training cost {:.1} machine-min",
            trained.workload,
            trained.schedules.len(),
            trained.memory_factor.factor,
            trained.costs.total_machine_minutes()
        );
        if let Some(dir) = &out_dir {
            let path =
                std::path::Path::new(dir).join(format!("{}.json", trained.workload.to_lowercase()));
            let json = serde_json::to_string_pretty(trained).map_err(|e| e.to_string())?;
            std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
    }
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("recommend needs an artifact path")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trained: TrainedJuggler = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let e: f64 = parse_num(
        &flag(args, "-e").ok_or("missing -e <examples>")?,
        "examples",
    )?;
    let f: f64 = parse_num(
        &flag(args, "-f").ok_or("missing -f <features>")?,
        "features",
    )?;

    let menu = match flag(args, "--ram-gb") {
        Some(gb) => {
            let gb: f64 = parse_num(&gb, "--ram-gb")?;
            let spec = MachineSpec {
                ram_bytes: (gb * 1e9) as u64,
                ..trained.target_spec
            };
            println!("(machine type override: {gb} GB RAM; §6.2 — optimization models reuse)");
            trained.recommend_on(e, f, &spec, None)
        }
        None => trained.recommend(e, f),
    };
    println!("{} at examples={e}, features={f}:", trained.workload);
    for o in &menu.options {
        println!(
            "  {:<26} {:>2} machines  {:>9}  {:>8.1} machine-min  (cache {})",
            o.schedule.notation(),
            o.machines,
            obs::fmt_duration_s(o.predicted_time_s),
            o.predicted_cost_machine_min,
            obs::fmt_bytes(o.predicted_size_bytes)
        );
    }
    for d in &menu.dominated {
        println!(
            "  {:<26} dominated (another option is faster and cheaper)",
            d.schedule.notation()
        );
    }
    for bad in &menu.invalid {
        println!(
            "  {:<26} INVALID (non-finite prediction: time {} s, cost {}) — check the model fit",
            bad.schedule.notation(),
            bad.predicted_time_s,
            bad.predicted_cost_machine_min
        );
    }
    Ok(())
}

fn cmd_schedules(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("schedules needs a workload name")?;
    let w = find_workload(name)?;
    let trained =
        OfflineTraining::run(w.as_ref(), &TrainingConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "HiBench default: {}\n",
        w.build(&w.paper_params()).default_schedule()
    );
    print!("{}", juggler_suite::juggler::model_card(&trained));
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("sweep needs a workload name")?;
    let w = find_workload(name)?;
    let params = w.paper_params();
    let app = w.build(&params);

    // An explicit --ops "p(1) u(1) p(2)" skips training entirely.
    if let Some(ops) = flag(args, "--ops") {
        let schedule = juggler_suite::dagflow::Schedule::parse(&ops).map_err(|e| e.to_string())?;
        app.check_schedule(&schedule).map_err(|e| e.to_string())?;
        println!(
            "{} with explicit schedule {}",
            w.name(),
            schedule.notation()
        );
        println!("{:>9} {:>10} {:>14}", "machines", "time", "cost (m-min)");
        for machines in 1..=12u32 {
            let mut sim = w.sim_params();
            sim.seed = 0xC11 ^ u64::from(machines);
            let report = Engine::new(
                &app,
                ClusterConfig::new(machines, MachineSpec::private_cluster()),
                sim,
            )
            .run(
                &schedule,
                RunOptions {
                    collect_traces: false,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .map_err(|e| e.to_string())?;
            println!(
                "{machines:>9} {:>10} {:>14.1}",
                obs::fmt_duration_s(report.total_time_s),
                report.cost_machine_minutes()
            );
        }
        return Ok(());
    }

    let trained =
        OfflineTraining::run(w.as_ref(), &TrainingConfig::default()).map_err(|e| e.to_string())?;
    let idx: usize = match flag(args, "--schedule") {
        Some(s) => parse_num::<usize>(&s, "--schedule")?.saturating_sub(1),
        None => 0,
    };
    let rs = trained
        .schedules
        .get(idx)
        .ok_or_else(|| format!("schedule {} does not exist", idx + 1))?;
    let recommended = trained.machines_for(idx, params.e(), params.f());
    println!(
        "{} schedule #{} = {} (recommended: {} machines)",
        w.name(),
        idx + 1,
        rs.schedule.notation(),
        recommended
    );
    println!("{:>9} {:>10} {:>14}", "machines", "time", "cost (m-min)");
    for machines in 1..=trained.max_machines {
        let mut sim = w.sim_params();
        sim.seed = 0xC11 ^ u64::from(machines);
        let report = Engine::new(&app, ClusterConfig::new(machines, trained.target_spec), sim)
            .run(
                &rs.schedule,
                RunOptions {
                    collect_traces: false,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .map_err(|e| e.to_string())?;
        let marker = if machines == recommended {
            "  <- recommended"
        } else {
            ""
        };
        println!(
            "{machines:>9} {:>10} {:>14.1}{marker}",
            obs::fmt_duration_s(report.total_time_s),
            report.cost_machine_minutes()
        );
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("dot needs a workload name")?;
    let w = find_workload(name)?;
    // Render the sample-scale plan (paper-scale PCA has 1833 nodes).
    let app = w.build(&w.sample_params());
    let schedule = match flag(args, "--schedule") {
        Some(s) => {
            let idx: usize = parse_num::<usize>(&s, "--schedule")?.saturating_sub(1);
            let trained = OfflineTraining::run(w.as_ref(), &TrainingConfig::default())
                .map_err(|e| e.to_string())?;
            trained
                .schedules
                .get(idx)
                .ok_or_else(|| format!("schedule {} does not exist", idx + 1))?
                .schedule
                .as_ref()
                .clone()
        }
        None => app.default_schedule().clone(),
    };
    print!("{}", to_dot(&app, &schedule));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("trace needs a workload name")?;
    let w = find_workload(name)?;
    let machines: u32 = match flag(args, "--machines") {
        Some(m) => parse_num(&m, "--machines")?,
        None => 2,
    };
    let width: usize = match flag(args, "--width") {
        Some(v) => parse_num(&v, "--width")?,
        None => 100,
    };
    // Sample scale keeps the trace readable.
    let app = w.build(&w.sample_params());
    let report = Engine::new(
        &app,
        ClusterConfig::new(machines, MachineSpec::private_cluster()),
        w.sim_params(),
    )
    .run(
        &app.default_schedule().clone(),
        RunOptions {
            collect_traces: true,
            partition_skew: 0.15,
            trace: TraceConfig::enabled(),
        },
    )
    .map_err(|e| e.to_string())?;
    print!(
        "{}",
        juggler_suite::cluster_sim::render_gantt(&report, width)
    );
    println!(
        "total {} on {machines} machines, {} tasks, {} spilled",
        obs::fmt_duration_s(report.total_time_s),
        report.total_tasks,
        report.spilled_tasks
    );
    let trace = report.trace.as_ref().expect("trace was enabled");
    println!("{}", trace.summary());

    // Chrome trace_event export (chrome://tracing, Perfetto).
    let out =
        flag(args, "--out").unwrap_or_else(|| format!("trace_{}.json", w.name().to_lowercase()));
    let run_name = format!("{} sample run ({machines} machines)", w.name());
    std::fs::write(&out, trace.to_chrome_json(&run_name))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote Chrome trace_event JSON to {out} (open in chrome://tracing or Perfetto)");
    if let Some(path) = flag(args, "--jsonl") {
        std::fs::write(&path, trace.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote JSONL event log to {path}");
    }

    // Per-pipeline-stage wall-clock timings (stage 1 through the stage-5
    // menu construction), skipped with --no-pipeline.
    if !args.iter().any(|a| a == "--no-pipeline") {
        let config = TrainingConfig {
            threads: threads_flag(args)?,
            ..TrainingConfig::default()
        };
        eprintln!("timing the offline pipeline for {}...", w.name());
        let (trained, timings) =
            OfflineTraining::run_traced(w.as_ref(), &config).map_err(|e| e.to_string())?;
        let paper = w.paper_params();
        let clock = std::time::Instant::now();
        let menu = trained.recommend(paper.e(), paper.f());
        let menu_s = clock.elapsed().as_secs_f64();
        println!("pipeline stage timings:");
        print!("{}", timings.summary());
        println!(
            "  stage {:<28} {:>9}  ({} options, {} dominated, {} invalid)",
            "5: menu construction",
            obs::fmt_duration_s(menu_s),
            menu.options.len(),
            menu.dominated.len(),
            menu.invalid.len()
        );
    }
    Ok(())
}

fn cmd_doctor(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("doctor needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    eprintln!(
        "doctor: training {} with the metrics registry enabled...",
        w.name()
    );
    let report = juggler_suite::juggler::doctor(w.as_ref(), &config).map_err(|e| e.to_string())?;
    print!("{}", report.render());
    // Host wall-clock timings are kept out of the deterministic report.
    if args.iter().any(|a| a == "--timings") {
        println!("\nhost stage timings (wall clock, non-deterministic)");
        print!("{}", report.timings.summary());
    }
    Ok(())
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("metrics needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    let format = flag(args, "--format").unwrap_or_else(|| "prom".to_owned());
    if format != "prom" && format != "json" {
        return Err(format!(
            "unknown --format `{format}` (expected prom or json)"
        ));
    }
    eprintln!(
        "metrics: training {} with the metrics registry enabled...",
        w.name()
    );
    let report = juggler_suite::juggler::doctor(w.as_ref(), &config).map_err(|e| e.to_string())?;
    // --timings re-snapshots with the wall-clock gauges included; the
    // default export contains deterministic metrics only.
    let snapshot = if args.iter().any(|a| a == "--timings") {
        obs::global().snapshot(true)
    } else {
        report.snapshot
    };
    match format.as_str() {
        "prom" => print!("{}", snapshot.to_prometheus()),
        _ => println!("{}", snapshot.to_json()),
    }
    Ok(())
}
