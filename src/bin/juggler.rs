//! `juggler` — command-line front end for the Juggler reproduction.
//!
//! ```text
//! juggler list                               # available workloads
//! juggler train LOR --out lor.json           # offline training -> artifact
//! juggler recommend lor.json -e 70000 -f 50000 [--ram-gb 32]
//! juggler schedules SVM                      # Table 2 view for one workload
//! juggler sweep SVM --schedule 1             # cost on 1..12 machines
//! juggler dot LOR > lor.dot                  # Graphviz DAG export
//! juggler trace SVM --machines 4             # Gantt + Chrome trace JSON + stage timings
//! juggler profile LOR --format tree          # hierarchical phase profile -> ledger
//! juggler doctor KMEANS                      # model-quality & decision diagnostics
//! juggler metrics LOR --format prom          # framework metrics export
//! juggler runs record LOR                    # run -> provenance manifest in results/runs/
//! juggler runs diff <a> <b>                  # cross-run drift report
//! juggler health LOR                         # fold run history -> drift verdicts + refit advice
//! juggler watch                              # one-shot health sweep over every workload
//! juggler perf-report                        # gate BENCH_*.json against results/baselines/
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use juggler_suite::cluster_sim::{ClusterConfig, Engine, MachineSpec, RunOptions, TraceConfig};
use juggler_suite::dagflow::to_dot;
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainedJuggler, TrainingConfig};
use juggler_suite::juggler::provenance::{DiffTolerances, ManifestDiff, RunManifest};
use juggler_suite::juggler::watchtower::{load_history, Watchtower};
use juggler_suite::obs;
use juggler_suite::obs::health::{SloSpec, Verdict};
use juggler_suite::workloads::{all_workloads, KMeans, MicroBatchStream, SqlStarJoin, Workload};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    // Most commands either succeed or error; `runs diff` and
    // `perf-report` additionally signal drift/regression through their
    // exit code, so the dispatch carries an ExitCode.
    let result: Result<ExitCode, String> = match command.as_str() {
        "list" => done(cmd_list()),
        "train" => done(cmd_train(rest)),
        "train-all" => done(cmd_train_all(rest)),
        "recommend" => done(cmd_recommend(rest)),
        "schedules" => done(cmd_schedules(rest)),
        "sweep" => done(cmd_sweep(rest)),
        "dot" => done(cmd_dot(rest)),
        "trace" => done(cmd_trace(rest)),
        "profile" => done(cmd_profile(rest)),
        "doctor" => done(cmd_doctor(rest)),
        "chaos" => done(cmd_chaos(rest)),
        "tenants" => cmd_tenants(rest),
        "metrics" => done(cmd_metrics(rest)),
        "runs" => cmd_runs(rest),
        "health" => cmd_health(rest),
        "watch" => cmd_watch(rest),
        "perf-report" => cmd_perf_report(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn done(r: Result<(), String>) -> Result<ExitCode, String> {
    r.map(|()| ExitCode::SUCCESS)
}

const USAGE: &str = "\
juggler — autonomous cost optimization for iterative big-data applications

USAGE:
  juggler list
  juggler train <WORKLOAD> [--out FILE] [--threads N]
  juggler train-all [--out-dir DIR] [--threads N]
  juggler recommend <ARTIFACT.json> -e <EXAMPLES> -f <FEATURES> [--ram-gb N]
  juggler schedules <WORKLOAD>
  juggler sweep <WORKLOAD> [--schedule N | --ops \"p(1) u(1) p(2)\"]
  juggler dot <WORKLOAD> [--schedule N]
  juggler trace <WORKLOAD> [--machines N] [--width N] [--format gantt|collapsed]
                 [--out FILE] [--jsonl FILE] [--no-pipeline] [--threads N]
  juggler profile <WORKLOAD> [--format tree|collapsed|json] [--diff <RUN>]
                 [--store DIR] [--threads N]
  juggler doctor <WORKLOAD> [--threads N] [--timings] [--format text|json]
  juggler chaos <WORKLOAD> [--plan loss|slow|flaky|pressure|combo|drill]
                 [--machines N] [--seed S]
  juggler tenants [SPEC.json]
  juggler metrics <WORKLOAD> [--format prom|json] [--output FILE]
                 [--timings] [--threads N]
  juggler runs record <WORKLOAD> [--threads N] [--store DIR]
  juggler runs list [--store DIR] [--workload W] [--limit N]
  juggler runs show <RUN> [--store DIR]
  juggler runs diff <RUN_A> <RUN_B> [--store DIR] [--tol-coeff X] [--tol-pred X]
  juggler health <WORKLOAD> [--slo FILE] [--format tree|json|prom]
                 [--since RUN] [--limit N] [--store DIR] [--report-store DIR]
  juggler watch [--slo FILE] [--store DIR]
  juggler perf-report [--results DIR] [--baselines DIR] [--write-baselines]

WORKLOAD: KMEANS | LIR | LOR | PCA | RFC | SQLJOIN | STREAM | SVM

`profile` trains the workload with the hierarchical phase profiler
enabled and prints the merged self/total-time call tree (--format tree),
collapsed stacks loadable in inferno/speedscope (--format collapsed), or
the canonical JSON document (--format json). Every invocation also files
the canonical JSON, content-addressed by SHA-256, in the profile ledger
(default store: results/profiles/). --diff RUN compares the fresh
profile against a stored one (id, unambiguous prefix, or path) and
reports per-phase time deltas plus the largest regressions. The tree
structure — phase names, call counts, counters — is deterministic at any
--threads setting; timings are host wall clock. `trace --format
collapsed` folds the simulated task spans of one run through the same
stack folder. Progress chatter on stderr is off by default; set
JUGGLER_LOG=info (or debug) to enable it.

`doctor` trains the workload with the metrics registry enabled, validates
every Pareto option's predicted time/size against a simulated run, and
prints model-quality (per-model LOO-CV winner and error) and decision
(hotspot accept/reject reasons) diagnostics. `metrics` runs the same flow
and exports the registry (Prometheus text by default); --timings includes
host wall-clock gauges, which makes the output non-deterministic.
`doctor --format json` emits the run's provenance manifest instead of the
human report; `metrics --output FILE` writes the export to a file.

`chaos` runs a fault-injection drill: a fault-free baseline, then the
same run with a named fault plan (executor loss, slow node, flaky tasks,
memory pressure, or combinations) injected at fractions of the measured
baseline, reporting retry/speculation/blacklist activity and whether
lineage restored the cache. Both runs are noise-free, so the report is
deterministic.

`tenants` runs a multi-tenant contention drill: several workloads share
one cluster under FAIR weights and a block-store pool sized so they
evict each other's cached blocks. Without a SPEC.json it runs the
built-in two-tenant drill (LOR incumbent, an SQL star join arriving 5 s
later with double weight). The spec is a JSON object — machines, seed,
ram_bytes, pressure, and a `tenants` array of {workload, weight,
arrival_offset_s} — with drill defaults for every absent field. The
report covers per-tenant wall clock, slot waits, cross-tenant eviction
attribution, residency half-life and the contention-aware (pressured)
hotspot audit; the command exits 1 when any tenancy invariant fails, so
it doubles as a CI gate.

`runs record` performs the doctor flow and files the resulting manifest
(content-addressed by SHA-256) in the run ledger (default store:
results/runs/). `runs diff` compares two manifests' hashed content and
flags model-winner changes, coefficient drift beyond tolerance,
prediction-error regressions, and counter drift; it exits 1 when drift is
found. RUN accepts a run id, an unambiguous id prefix, or a manifest
path. `runs list` prints newest-first; --workload and --limit narrow the
listing.

`health` folds the recorded run history of one workload through the
deterministic drift detectors (CUSUM on model-coefficient deviation,
Page–Hinkley on prediction relative error, EWMA bands on residuals) and
evaluates it against the error-budget SLO (defaults, or a JSON spec via
--slo — see examples/slo.json). The resulting HealthReport is filed,
content-addressed, under results/health/ and printed as a tree (default),
canonical JSON, or Prometheus gauges (--format prom). --since RUN and
--limit N narrow the fold window; exit status is 1 when any model or the
error budget is Drifted, so the command doubles as a CI gate. `watch` is
the one-shot sweep: one verdict line per workload in the run ledger,
exit 1 if any is Drifted.

`perf-report` gates the committed/fresh BENCH_*.json artifacts
against the baseline specs in results/baselines/ and exits 1 on any
regression; --write-baselines regenerates the specs (normally done via
scripts/refresh_baselines.sh so baseline churn is an explicit commit).

--threads 0 (the default) auto-sizes the experiment worker pool from the
JUGGLER_THREADS environment variable or the machine's parallelism;
--threads 1 forces sequential runs. Artifacts are bit-identical either
way.";

fn find_workload(name: &str) -> Result<Box<dyn Workload>, String> {
    juggler_suite::juggler::tenants::workload_by_name(name)
        .ok_or_else(|| format!("unknown workload `{name}` (try `juggler list`)"))
}

/// Extracts `--flag value` from an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn cmd_list() -> Result<(), String> {
    println!(
        "{:<6} {:>9} {:>9} {:>6} {:>10}",
        "name", "examples", "features", "iters", "input"
    );
    let mut pool = all_workloads();
    pool.push(Box::new(KMeans::default()));
    pool.push(Box::new(SqlStarJoin));
    pool.push(Box::new(MicroBatchStream));
    for w in pool {
        let p = w.paper_params();
        println!(
            "{:<6} {:>9} {:>9} {:>6} {:>9.1}G",
            w.name(),
            p.examples,
            p.features,
            p.iterations,
            p.input_bytes() as f64 / 1e9
        );
    }
    Ok(())
}

/// Parses the shared `--threads N` flag (0 = automatic).
fn threads_flag(args: &[String]) -> Result<usize, String> {
    match args.iter().position(|a| a == "--threads") {
        Some(i) => match args.get(i + 1) {
            Some(t) => parse_num(t, "--threads"),
            None => Err("--threads requires a value".into()),
        },
        None => Ok(0),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("train needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    obs::log_info!("training Juggler for {} (four offline stages)...", w.name());
    let trained = OfflineTraining::run(w.as_ref(), &config).map_err(|e| e.to_string())?;
    let json = serde_json::to_string_pretty(&trained).map_err(|e| e.to_string())?;
    match flag(args, "--out") {
        Some(path) => {
            std::fs::write(&path, json).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} schedules, memory factor {:.3}, training cost {:.1} machine-min",
                trained.schedules.len(),
                trained.memory_factor.factor,
                trained.costs.total_machine_minutes()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_train_all(args: &[String]) -> Result<(), String> {
    let threads = threads_flag(args)?;
    let out_dir = flag(args, "--out-dir");
    let ws = all_workloads();
    obs::log_info!(
        "training {} workloads on {} worker(s)...",
        ws.len(),
        juggler_suite::juggler::resolve_threads(threads)
    );
    // Whole workloads fan across the pool; each training then runs its
    // own stages sequentially so the pool is not oversubscribed.
    let results =
        juggler_suite::juggler::try_run_indexed::<_, String, _>(ws.len(), threads, |i| {
            let config = TrainingConfig {
                threads: 1,
                ..TrainingConfig::default()
            };
            OfflineTraining::run(ws[i].as_ref(), &config)
                .map_err(|e| format!("{}: {e}", ws[i].name()))
        })?;
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    }
    for trained in &results {
        println!(
            "{:<5} {} schedules, memory factor {:.3}, training cost {:.1} machine-min",
            trained.workload,
            trained.schedules.len(),
            trained.memory_factor.factor,
            trained.costs.total_machine_minutes()
        );
        if let Some(dir) = &out_dir {
            let path =
                std::path::Path::new(dir).join(format!("{}.json", trained.workload.to_lowercase()));
            let json = serde_json::to_string_pretty(trained).map_err(|e| e.to_string())?;
            std::fs::write(&path, json).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
    }
    Ok(())
}

fn cmd_recommend(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("recommend needs an artifact path")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let trained: TrainedJuggler = serde_json::from_str(&json).map_err(|e| e.to_string())?;
    let e: f64 = parse_num(
        &flag(args, "-e").ok_or("missing -e <examples>")?,
        "examples",
    )?;
    let f: f64 = parse_num(
        &flag(args, "-f").ok_or("missing -f <features>")?,
        "features",
    )?;

    let menu = match flag(args, "--ram-gb") {
        Some(gb) => {
            let gb: f64 = parse_num(&gb, "--ram-gb")?;
            let spec = MachineSpec {
                ram_bytes: (gb * 1e9) as u64,
                ..trained.target_spec
            };
            println!("(machine type override: {gb} GB RAM; §6.2 — optimization models reuse)");
            trained.recommend_on(e, f, &spec, None)
        }
        None => trained.recommend(e, f),
    };
    println!("{} at examples={e}, features={f}:", trained.workload);
    for o in &menu.options {
        println!(
            "  {:<26} {:>2} machines  {:>9}  {:>8.1} machine-min  (cache {})",
            o.schedule.notation(),
            o.machines,
            obs::fmt_duration_s(o.predicted_time_s),
            o.predicted_cost_machine_min,
            obs::fmt_bytes(o.predicted_size_bytes)
        );
    }
    for d in &menu.dominated {
        println!(
            "  {:<26} dominated (another option is faster and cheaper)",
            d.schedule.notation()
        );
    }
    for bad in &menu.invalid {
        println!(
            "  {:<26} INVALID (non-finite prediction: time {} s, cost {}) — check the model fit",
            bad.schedule.notation(),
            bad.predicted_time_s,
            bad.predicted_cost_machine_min
        );
    }
    Ok(())
}

fn cmd_schedules(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("schedules needs a workload name")?;
    let w = find_workload(name)?;
    let trained =
        OfflineTraining::run(w.as_ref(), &TrainingConfig::default()).map_err(|e| e.to_string())?;
    println!(
        "HiBench default: {}\n",
        w.build(&w.paper_params()).default_schedule()
    );
    print!("{}", juggler_suite::juggler::model_card(&trained));
    Ok(())
}

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("sweep needs a workload name")?;
    let w = find_workload(name)?;
    let params = w.paper_params();
    let app = w.build(&params);

    // An explicit --ops "p(1) u(1) p(2)" skips training entirely.
    if let Some(ops) = flag(args, "--ops") {
        let schedule = juggler_suite::dagflow::Schedule::parse(&ops).map_err(|e| e.to_string())?;
        app.check_schedule(&schedule).map_err(|e| e.to_string())?;
        println!(
            "{} with explicit schedule {}",
            w.name(),
            schedule.notation()
        );
        println!("{:>9} {:>10} {:>14}", "machines", "time", "cost (m-min)");
        for machines in 1..=12u32 {
            let mut sim = w.sim_params();
            sim.seed = 0xC11 ^ u64::from(machines);
            let report = Engine::new(
                &app,
                ClusterConfig::new(machines, MachineSpec::private_cluster()),
                sim,
            )
            .run(
                &schedule,
                RunOptions {
                    collect_traces: false,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .map_err(|e| e.to_string())?;
            println!(
                "{machines:>9} {:>10} {:>14.1}",
                obs::fmt_duration_s(report.total_time_s),
                report.cost_machine_minutes()
            );
        }
        return Ok(());
    }

    let trained =
        OfflineTraining::run(w.as_ref(), &TrainingConfig::default()).map_err(|e| e.to_string())?;
    let idx: usize = match flag(args, "--schedule") {
        Some(s) => parse_num::<usize>(&s, "--schedule")?.saturating_sub(1),
        None => 0,
    };
    let rs = trained
        .schedules
        .get(idx)
        .ok_or_else(|| format!("schedule {} does not exist", idx + 1))?;
    let recommended = trained.machines_for(idx, params.e(), params.f());
    println!(
        "{} schedule #{} = {} (recommended: {} machines)",
        w.name(),
        idx + 1,
        rs.schedule.notation(),
        recommended
    );
    println!("{:>9} {:>10} {:>14}", "machines", "time", "cost (m-min)");
    for machines in 1..=trained.max_machines {
        let mut sim = w.sim_params();
        sim.seed = 0xC11 ^ u64::from(machines);
        let report = Engine::new(&app, ClusterConfig::new(machines, trained.target_spec), sim)
            .run(
                &rs.schedule,
                RunOptions {
                    collect_traces: false,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .map_err(|e| e.to_string())?;
        let marker = if machines == recommended {
            "  <- recommended"
        } else {
            ""
        };
        println!(
            "{machines:>9} {:>10} {:>14.1}{marker}",
            obs::fmt_duration_s(report.total_time_s),
            report.cost_machine_minutes()
        );
    }
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("dot needs a workload name")?;
    let w = find_workload(name)?;
    // Render the sample-scale plan (paper-scale PCA has 1833 nodes).
    let app = w.build(&w.sample_params());
    let schedule = match flag(args, "--schedule") {
        Some(s) => {
            let idx: usize = parse_num::<usize>(&s, "--schedule")?.saturating_sub(1);
            let trained = OfflineTraining::run(w.as_ref(), &TrainingConfig::default())
                .map_err(|e| e.to_string())?;
            trained
                .schedules
                .get(idx)
                .ok_or_else(|| format!("schedule {} does not exist", idx + 1))?
                .schedule
                .as_ref()
                .clone()
        }
        None => app.default_schedule().clone(),
    };
    print!("{}", to_dot(&app, &schedule));
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("trace needs a workload name")?;
    let w = find_workload(name)?;
    let machines: u32 = match flag(args, "--machines") {
        Some(m) => parse_num(&m, "--machines")?,
        None => 2,
    };
    let width: usize = match flag(args, "--width") {
        Some(v) => parse_num(&v, "--width")?,
        None => 100,
    };
    let format = flag(args, "--format").unwrap_or_else(|| "gantt".to_owned());
    if format != "gantt" && format != "collapsed" {
        return Err(format!(
            "unknown --format `{format}` (expected gantt or collapsed)"
        ));
    }
    // Sample scale keeps the trace readable.
    let app = w.build(&w.sample_params());
    let report = Engine::new(
        &app,
        ClusterConfig::new(machines, MachineSpec::private_cluster()),
        w.sim_params(),
    )
    .run(
        &app.default_schedule().clone(),
        RunOptions {
            collect_traces: true,
            partition_skew: 0.15,
            trace: TraceConfig::enabled(),
        },
    )
    .map_err(|e| e.to_string())?;

    // Collapsed-stack export: the simulated task spans folded through the
    // same stack folder the phase profiler uses (`obs::prof::fold_stacks`),
    // so `juggler trace` and `juggler profile` flamegraphs share one
    // exporter. Weights are simulated task microseconds.
    if format == "collapsed" {
        let trace = report.trace.as_ref().expect("trace was enabled");
        let collapsed = trace.to_collapsed();
        match flag(args, "--out") {
            Some(path) => {
                std::fs::write(&path, &collapsed).map_err(|e| format!("writing {path}: {e}"))?;
                eprintln!("wrote collapsed stacks to {path} (inferno/speedscope format)");
            }
            None => print!("{collapsed}"),
        }
        return Ok(());
    }

    print!(
        "{}",
        juggler_suite::cluster_sim::render_gantt(&report, width)
    );
    println!(
        "total {} on {machines} machines, {} tasks, {} spilled",
        obs::fmt_duration_s(report.total_time_s),
        report.total_tasks,
        report.spilled_tasks
    );
    let trace = report.trace.as_ref().expect("trace was enabled");
    println!("{}", trace.summary());

    // Chrome trace_event export (chrome://tracing, Perfetto).
    let out =
        flag(args, "--out").unwrap_or_else(|| format!("trace_{}.json", w.name().to_lowercase()));
    let run_name = format!("{} sample run ({machines} machines)", w.name());
    std::fs::write(&out, trace.to_chrome_json(&run_name))
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote Chrome trace_event JSON to {out} (open in chrome://tracing or Perfetto)");
    if let Some(path) = flag(args, "--jsonl") {
        std::fs::write(&path, trace.to_jsonl()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote JSONL event log to {path}");
    }

    // Per-pipeline-stage wall-clock timings (stage 1 through the stage-5
    // menu construction), skipped with --no-pipeline.
    if !args.iter().any(|a| a == "--no-pipeline") {
        let config = TrainingConfig {
            threads: threads_flag(args)?,
            ..TrainingConfig::default()
        };
        obs::log_info!("timing the offline pipeline for {}...", w.name());
        let (trained, timings) =
            OfflineTraining::run_traced(w.as_ref(), &config).map_err(|e| e.to_string())?;
        let paper = w.paper_params();
        let clock = std::time::Instant::now();
        let menu = trained.recommend(paper.e(), paper.f());
        let menu_s = clock.elapsed().as_secs_f64();
        println!("pipeline stage timings:");
        print!("{}", timings.summary());
        println!(
            "  stage {:<28} {:>9}  ({} options, {} dominated, {} invalid)",
            "5: menu construction",
            obs::fmt_duration_s(menu_s),
            menu.options.len(),
            menu.dominated.len(),
            menu.invalid.len()
        );
    }
    Ok(())
}

// ───────────────────────── phase profiling ─────────────────────────

/// The profile ledger: content-addressed canonical profile documents
/// under `results/profiles/`, kept apart from the run-manifest ledger so
/// `juggler runs list` (which parses manifests) never trips over them.
fn profile_store(args: &[String]) -> obs::LedgerStore {
    match flag(args, "--store") {
        Some(dir) => obs::LedgerStore::new(dir),
        None => obs::LedgerStore::new(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("results")
                .join("profiles"),
        ),
    }
}

/// Loads the profile tree out of a stored profile document (or a bare
/// profile JSON file, for hand-fed paths).
fn load_profile(store: &obs::LedgerStore, reference: &str) -> Result<obs::prof::Profile, String> {
    let (path, raw) = store.load(reference)?;
    let doc: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("{}: {e}", path.display()))?;
    let tree = doc.get("profile").unwrap_or(&doc);
    obs::prof::Profile::from_json_value(tree).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_profile(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("profile needs a workload name")?;
    let w = find_workload(name)?;
    let format = flag(args, "--format").unwrap_or_else(|| "tree".to_owned());
    if !matches!(format.as_str(), "tree" | "collapsed" | "json") {
        return Err(format!(
            "unknown --format `{format}` (expected tree, collapsed, or json)"
        ));
    }
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    obs::log_info!(
        "profile: training {} with the phase profiler enabled...",
        w.name()
    );
    let prof = obs::prof::profiler();
    prof.reset();
    prof.enable();
    let trained = OfflineTraining::run(w.as_ref(), &config).map_err(|e| e.to_string())?;
    // Stage 5 (menu construction) profiles too, so the tree covers the
    // whole paper pipeline, not just offline training.
    let paper = w.paper_params();
    let menu = trained.recommend(paper.e(), paper.f());
    let profile = prof.take_profile();
    prof.set_enabled(false);
    obs::log_info!(
        "profile: {} options on the menu; recorded {} of phase time",
        menu.options.len(),
        obs::fmt_duration_s(profile.total_ns() as f64 / 1e9)
    );

    // File the canonical document in the profile ledger before rendering,
    // so every profile a human looks at is also diffable later.
    let doc = serde_json::Value::Object(vec![
        ("version".to_owned(), serde_json::Value::Int(1)),
        (
            "workload".to_owned(),
            serde_json::Value::Str(w.name().to_owned()),
        ),
        (
            "structure_digest".to_owned(),
            serde_json::Value::Str(profile.structure_digest()),
        ),
        ("profile".to_owned(), profile.to_json_value()),
    ]);
    let doc_json = serde_json::to_string(&doc).map_err(|e| e.to_string())?;
    let hash = obs::sha256_hex(doc_json.as_bytes());
    let store = profile_store(args);
    let stored = store
        .record(&hash, &doc_json)
        .map_err(|e| format!("recording profile: {e}"))?;

    match format.as_str() {
        "tree" => print!("{}", profile.render_tree()),
        "collapsed" => print!("{}", profile.to_collapsed()),
        _ => println!("{doc_json}"),
    }
    eprintln!(
        "recorded profile {} ({})",
        obs::LedgerStore::id_of(&hash),
        stored.display()
    );

    if let Some(reference) = flag(args, "--diff") {
        let base = load_profile(&store, &reference)?;
        let diff = obs::prof::ProfileDiff::between(&base, &profile);
        println!("\nphase deltas vs {reference} (base -> new):");
        print!("{}", diff.render());
        let top = diff.top_regressed(3);
        if !top.is_empty() {
            println!("top regressed phases:");
            for line in &top {
                println!("  {line}");
            }
        }
    }
    Ok(())
}

fn cmd_doctor(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("doctor needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    let format = flag(args, "--format").unwrap_or_else(|| "text".to_owned());
    if format != "text" && format != "json" {
        return Err(format!(
            "unknown --format `{format}` (expected text or json)"
        ));
    }
    obs::log_info!(
        "doctor: training {} with the metrics registry enabled...",
        w.name()
    );
    let report = juggler_suite::juggler::doctor(w.as_ref(), &config).map_err(|e| e.to_string())?;
    if format == "json" {
        // The machine-readable form is the provenance manifest itself —
        // exactly what `runs record` files in the ledger.
        let manifest = RunManifest::from_doctor(&report, &config, &w.paper_params());
        print!("{}", manifest.to_json());
        return Ok(());
    }
    print!("{}", report.render());
    // Host wall-clock timings are kept out of the deterministic report.
    if args.iter().any(|a| a == "--timings") {
        println!("\nhost stage timings (wall clock, non-deterministic)");
        print!("{}", report.timings.summary());
    }
    Ok(())
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("chaos needs a workload name")?;
    let w = find_workload(name)?;
    let mut cfg = juggler_suite::juggler::ChaosConfig::default();
    if let Some(plan) = flag(args, "--plan") {
        cfg.kind = juggler_suite::juggler::PlanKind::from_name(&plan).ok_or_else(|| {
            format!(
                "unknown plan `{plan}` (expected loss | slow | flaky | pressure | combo | drill)"
            )
        })?;
    }
    if let Some(m) = flag(args, "--machines") {
        cfg.machines = parse_num(&m, "--machines")?;
        if cfg.machines == 0 {
            return Err("--machines must be at least 1".into());
        }
    }
    if let Some(s) = flag(args, "--seed") {
        cfg.seed = parse_num(&s, "--seed")?;
    }
    obs::log_info!(
        "chaos: running {} fault-free, then with plan `{}`...",
        w.name(),
        cfg.kind.name()
    );
    let outcome = juggler_suite::juggler::run_chaos(w.as_ref(), &cfg).map_err(|e| e.to_string())?;
    print!("{}", outcome.render());
    Ok(())
}

fn cmd_tenants(args: &[String]) -> Result<ExitCode, String> {
    use juggler_suite::juggler::tenants::{run_tenants, TenantsSpec};
    let spec = match args.first() {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read spec `{path}`: {e}"))?;
            TenantsSpec::from_json(&text)?
        }
        None => TenantsSpec::drill(),
    };
    obs::log_info!(
        "tenants: running {} tenants on {} machines...",
        spec.tenants.len(),
        spec.machines
    );
    let outcome = run_tenants(&spec)?;
    print!("{}", outcome.render());
    Ok(if outcome.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_metrics(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("metrics needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    let format = flag(args, "--format").unwrap_or_else(|| "prom".to_owned());
    if format != "prom" && format != "json" {
        return Err(format!(
            "unknown --format `{format}` (expected prom or json)"
        ));
    }
    obs::log_info!(
        "metrics: training {} with the metrics registry enabled...",
        w.name()
    );
    let report = juggler_suite::juggler::doctor(w.as_ref(), &config).map_err(|e| e.to_string())?;
    // --timings re-snapshots with the wall-clock gauges included; the
    // default export contains deterministic metrics only.
    let snapshot = if args.iter().any(|a| a == "--timings") {
        obs::global().snapshot(true)
    } else {
        report.snapshot
    };
    let rendered = match format.as_str() {
        "prom" => snapshot.to_prometheus(),
        _ => format!("{}\n", snapshot.to_json()),
    };
    match flag(args, "--output") {
        Some(path) => {
            std::fs::write(&path, &rendered).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {} metrics to {path}", snapshot.metrics.len());
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

// ───────────────────────── run ledger commands ─────────────────────────

/// The conventional ledger store, overridable with `--store DIR`.
fn ledger_store(args: &[String]) -> obs::LedgerStore {
    match flag(args, "--store") {
        Some(dir) => obs::LedgerStore::new(dir),
        None => obs::LedgerStore::under(Path::new(env!("CARGO_MANIFEST_DIR"))),
    }
}

fn cmd_runs(args: &[String]) -> Result<ExitCode, String> {
    let sub = args
        .first()
        .ok_or("runs needs a subcommand: record | list | show | diff")?;
    let rest = &args[1..];
    match sub.as_str() {
        "record" => done(cmd_runs_record(rest)),
        "list" => done(cmd_runs_list(rest)),
        "show" => done(cmd_runs_show(rest)),
        "diff" => cmd_runs_diff(rest),
        other => Err(format!(
            "unknown runs subcommand `{other}` (expected record | list | show | diff)"
        )),
    }
}

fn cmd_runs_record(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("runs record needs a workload name")?;
    let w = find_workload(name)?;
    let config = TrainingConfig {
        threads: threads_flag(args)?,
        ..TrainingConfig::default()
    };
    obs::log_info!("runs record: training {} (doctor flow)...", w.name());
    let report = juggler_suite::juggler::doctor(w.as_ref(), &config).map_err(|e| e.to_string())?;
    let manifest = RunManifest::from_doctor(&report, &config, &w.paper_params());
    let store = ledger_store(args);
    let path = store
        .record(&manifest.content_hash, &manifest.to_json())
        .map_err(|e| format!("recording manifest: {e}"))?;
    println!(
        "recorded run {} ({}: {} schedules, mean time err {}%)",
        manifest.id(),
        manifest.content.workload,
        manifest.content.schedules.len(),
        obs::fmt_sig(manifest.content.predictions.mean_time_rel_error * 100.0, 3)
    );
    println!("  {}", path.display());
    Ok(())
}

fn cmd_runs_list(args: &[String]) -> Result<(), String> {
    let store = ledger_store(args);
    let mut runs = store
        .list()
        .map_err(|e| format!("reading ledger {}: {e}", store.root().display()))?;
    if let Some(workload) = flag(args, "--workload") {
        runs.retain(|r| r.workload.eq_ignore_ascii_case(&workload));
    }
    if let Some(limit) = flag(args, "--limit") {
        let limit: usize = parse_num(&limit, "--limit")?;
        runs.truncate(limit);
    }
    if runs.is_empty() {
        println!("no runs recorded in {}", store.root().display());
        return Ok(());
    }
    println!(
        "{:<16} {:<8} {:>9} {:>9} {:>6} {:>10} {:>14}",
        "id", "workload", "examples", "features", "iters", "schedules", "mean time err"
    );
    for r in &runs {
        println!(
            "{:<16} {:<8} {:>9} {:>9} {:>6} {:>10} {:>14}",
            r.id,
            r.workload,
            r.params.0,
            r.params.1,
            r.params.2,
            r.schedules,
            r.mean_time_rel_error.map_or_else(
                || "-".to_owned(),
                |e| format!("{}%", obs::fmt_sig(e * 100.0, 3))
            )
        );
    }
    Ok(())
}

fn load_manifest(store: &obs::LedgerStore, reference: &str) -> Result<RunManifest, String> {
    let (path, raw) = store.load(reference)?;
    RunManifest::from_json(&raw).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_runs_show(args: &[String]) -> Result<(), String> {
    let reference = args.first().ok_or("runs show needs a run id or path")?;
    let manifest = load_manifest(&ledger_store(args), reference)?;
    print!("{}", render_manifest(&manifest));
    Ok(())
}

fn cmd_runs_diff(args: &[String]) -> Result<ExitCode, String> {
    let a_ref = args.first().ok_or("runs diff needs two run references")?;
    let b_ref = args.get(1).ok_or("runs diff needs two run references")?;
    let store = ledger_store(args);
    let a = load_manifest(&store, a_ref)?;
    let b = load_manifest(&store, b_ref)?;
    if a.envelope.schema_version != b.envelope.schema_version {
        return Err(format!(
            "cannot diff across manifest schema versions ({} vs {})",
            a.envelope.schema_version, b.envelope.schema_version
        ));
    }
    let mut tol = DiffTolerances::default();
    if let Some(v) = flag(args, "--tol-coeff") {
        tol.coeff_rel = parse_num(&v, "--tol-coeff")?;
    }
    if let Some(v) = flag(args, "--tol-pred") {
        tol.pred_err_abs = parse_num(&v, "--tol-pred")?;
    }
    let diff = ManifestDiff::between(&a, &b, &tol);
    print!("{}", diff.render());
    Ok(if diff.has_drift() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Deterministic `runs show` rendering of a manifest.
fn render_manifest(m: &RunManifest) -> String {
    let mut out = String::new();
    let c = &m.content;
    out.push_str(&format!("run {}\n", m.id()));
    out.push_str(&format!("  content hash {}\n", m.content_hash));
    out.push_str(&format!(
        "  tool {} (schema {}), threads requested {} resolved {}\n",
        m.envelope.tool,
        m.envelope.schema_version,
        m.envelope.threads_requested,
        m.envelope.threads_resolved
    ));
    out.push_str(&format!(
        "  {}  e {}  f {}  i {}  seed {:#x}  max machines {}  memory factor {}\n",
        c.workload,
        c.params.examples,
        c.params.features,
        c.params.iterations,
        c.seed,
        c.max_machines,
        obs::fmt_sig(c.memory_factor, 6)
    ));
    out.push_str("  schedules\n");
    for s in &c.schedules {
        out.push_str(&format!(
            "    [{}] {:<24} digest {}…  benefit {:>8}  budget {:>8}\n",
            s.index,
            s.notation,
            &s.digest[..12.min(s.digest.len())],
            obs::fmt_duration_s(s.benefit_s),
            obs::fmt_bytes(s.budget_bytes)
        ));
    }
    for (label, models) in [
        ("size models", &c.size_models),
        ("time models", &c.time_models),
    ] {
        out.push_str(&format!("  {label}\n"));
        for r in models {
            let coeffs: Vec<String> = r.model.coeffs.iter().map(|&x| obs::fmt_sig(x, 6)).collect();
            out.push_str(&format!(
                "    {:<9} {}  θ [{}]  cv {}%\n",
                r.name,
                r.model.spec,
                coeffs.join(", "),
                obs::fmt_sig(r.model.cv_error * 100.0, 3)
            ));
        }
    }
    out.push_str(&format!(
        "  predictions ({} options)\n",
        c.predictions.entries.len()
    ));
    for p in &c.predictions.entries {
        out.push_str(&format!(
            "    [{}] {} machines  time {} pred / {} sim  size {} / {}  report {}…\n",
            p.schedule_index,
            p.machines,
            obs::fmt_duration_s(p.predicted_time_s),
            obs::fmt_duration_s(p.actual_time_s),
            obs::fmt_bytes(p.predicted_size_bytes),
            obs::fmt_bytes(p.actual_peak_bytes),
            &p.report_digest[..12.min(p.report_digest.len())]
        ));
    }
    out.push_str(&format!(
        "    time error: mean {}%, max {}%   size error: mean {}%\n",
        obs::fmt_sig(c.predictions.mean_time_rel_error * 100.0, 3),
        obs::fmt_sig(c.predictions.max_time_rel_error * 100.0, 3),
        obs::fmt_sig(c.predictions.mean_size_rel_error * 100.0, 3)
    ));
    out.push_str(&format!("  counters ({})\n", c.counters.len()));
    for k in &c.counters {
        out.push_str(&format!("    {:<36} {}\n", k.name, k.value));
    }
    out
}

// ───────────────────────── model-health monitor ─────────────────────────

/// The health-report ledger: content-addressed `HealthReport` documents
/// under `results/health/`, kept apart from the run-manifest ledger so
/// `juggler runs list` never parses them. `--report-store DIR`
/// overrides (the run ledger keeps its own `--store DIR` override).
fn health_store(args: &[String]) -> obs::LedgerStore {
    match flag(args, "--report-store") {
        Some(dir) => obs::LedgerStore::new(dir),
        None => obs::LedgerStore::new(
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("results")
                .join("health"),
        ),
    }
}

/// Reads the SLO spec from `--slo FILE`, or falls back to the defaults.
fn slo_spec(args: &[String]) -> Result<SloSpec, String> {
    match flag(args, "--slo") {
        Some(path) => {
            let raw = std::fs::read_to_string(&path).map_err(|e| format!("reading {path}: {e}"))?;
            SloSpec::from_json(&raw).map_err(|e| format!("{path}: {e}"))
        }
        None => Ok(SloSpec::default()),
    }
}

fn verdict_exit(v: &Verdict) -> ExitCode {
    if v.level() == 2 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_health(args: &[String]) -> Result<ExitCode, String> {
    let name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("health needs a workload name")?
        .to_ascii_uppercase();
    let format = flag(args, "--format").unwrap_or_else(|| "tree".to_owned());
    if !matches!(format.as_str(), "tree" | "json" | "prom") {
        return Err(format!(
            "unknown --format `{format}` (expected tree, json, or prom)"
        ));
    }
    let slo = slo_spec(args)?;
    let since = flag(args, "--since");
    let limit = match flag(args, "--limit") {
        Some(v) => parse_num(&v, "--limit")?,
        None => 0usize,
    };
    let store = ledger_store(args);
    let reports = health_store(args);
    // Samples are cached next to the filed reports: a steady-state
    // `juggler health` only parses manifests recorded since the last one.
    let cache = reports.root().join("sample_cache.json");
    let report =
        Watchtower::new(slo).fold_ledger(&store, &name, since.as_deref(), limit, Some(&cache))?;
    if report.window.is_empty() {
        return Err(format!(
            "no runs recorded for {name} in {} (try `juggler runs record {name}`)",
            store.root().display()
        ));
    }
    let stored = reports
        .record(&report.digest(), &report.to_json())
        .map_err(|e| format!("recording health report: {e}"))?;
    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        "prom" => {
            let registry = obs::Registry::new(true);
            report.register_metrics(&registry);
            print!("{}", registry.snapshot(false).to_prometheus());
        }
        _ => print!("{}", report.render_tree()),
    }
    obs::log_info!("health report filed at {}", stored.display());
    Ok(verdict_exit(&report.verdict))
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let slo = slo_spec(args)?;
    let store = ledger_store(args);
    let runs = store
        .list()
        .map_err(|e| format!("reading ledger {}: {e}", store.root().display()))?;
    if runs.is_empty() {
        println!("no runs recorded in {}", store.root().display());
        return Ok(ExitCode::SUCCESS);
    }
    let mut workloads: Vec<String> = runs.iter().map(|r| r.workload.clone()).collect();
    workloads.sort();
    workloads.dedup();
    let mut worst = Verdict::Healthy;
    println!("{:<8} {:>5}  verdict", "name", "runs");
    for name in workloads {
        let manifests = load_history(&store, &name, None, 0)?;
        let report = Watchtower::new(slo.clone()).fold(&manifests);
        println!(
            "{:<8} {:>5}  {}",
            name,
            manifests.len(),
            report.verdict.detail()
        );
        worst = worst.worst(report.verdict.clone());
    }
    Ok(verdict_exit(&worst))
}

// ───────────────────────── perf-regression gate ─────────────────────────

fn results_dir(args: &[String]) -> PathBuf {
    flag(args, "--results").map_or_else(
        || Path::new(env!("CARGO_MANIFEST_DIR")).join("results"),
        PathBuf::from,
    )
}

fn baselines_dir(args: &[String], results: &Path) -> PathBuf {
    flag(args, "--baselines").map_or_else(|| results.join("baselines"), PathBuf::from)
}

/// Bench artifact name (`metrics_overhead`) from a `BENCH_*.json` file
/// name, if it is one.
fn bench_name(file_name: &str) -> Option<&str> {
    file_name.strip_prefix("BENCH_")?.strip_suffix(".json")
}

fn cmd_perf_report(args: &[String]) -> Result<ExitCode, String> {
    let results = results_dir(args);
    let baselines = baselines_dir(args, &results);

    if args.iter().any(|a| a == "--write-baselines") {
        return done(write_baselines(&results, &baselines));
    }

    let mut specs = Vec::new();
    let entries = std::fs::read_dir(&baselines)
        .map_err(|e| format!("reading baselines {}: {e}", baselines.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let raw = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let spec =
            obs::BaselineSpec::from_json(&raw).map_err(|e| format!("{}: {e}", path.display()))?;
        specs.push(spec);
    }
    specs.sort_by(|a, b| a.source.cmp(&b.source));
    if specs.is_empty() {
        return Err(format!(
            "no baseline specs in {} (run scripts/refresh_baselines.sh)",
            baselines.display()
        ));
    }

    let mut report = obs::PerfReport::default();
    // When a throughput (Min) check trips and both the frozen baseline
    // and the fresh artifact embed a phase profile, name the phases that
    // slowed down — the "what regressed" half of the red report.
    let mut attributions: Vec<(String, Vec<String>)> = Vec::new();
    for spec in &specs {
        let fresh_path = results.join(&spec.source);
        let bench = match std::fs::read_to_string(&fresh_path) {
            Ok(raw) => {
                let fresh: serde_json::Value = serde_json::from_str(&raw)
                    .map_err(|e| format!("{}: {e}", fresh_path.display()))?;
                let bench = spec.evaluate(&fresh);
                if let Some(lines) = obs::regression_attribution(spec, &fresh, &bench, 3) {
                    attributions.push((spec.source.clone(), lines));
                }
                bench
            }
            Err(e) => obs::BenchReport {
                source: spec.source.clone(),
                outcomes: vec![obs::CheckOutcome {
                    path: "(artifact)".to_owned(),
                    detail: format!("missing fresh artifact {}: {e}", fresh_path.display()),
                    pass: false,
                }],
            },
        };
        report.benches.push(bench);
    }
    print!("{}", report.render());
    for (source, lines) in &attributions {
        println!("{source}: slowest regressed phases (baseline -> fresh)");
        for line in lines {
            println!("  {line}");
        }
    }
    Ok(if report.has_regressions() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Regenerates every baseline spec from the current `BENCH_*.json`
/// artifacts (the implementation behind `scripts/refresh_baselines.sh`).
fn write_baselines(results: &Path, baselines: &Path) -> Result<(), String> {
    let entries = std::fs::read_dir(results)
        .map_err(|e| format!("reading results {}: {e}", results.display()))?;
    let mut wrote = 0usize;
    let mut names: Vec<String> = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if bench_name(file_name).is_some() {
            names.push(file_name.to_owned());
        }
    }
    names.sort();
    std::fs::create_dir_all(baselines)
        .map_err(|e| format!("creating {}: {e}", baselines.display()))?;
    for file_name in &names {
        let name = bench_name(file_name).expect("filtered above");
        let Some(checks) = obs::default_checks(name) else {
            obs::log_warn!("skipping {file_name}: no gate policy for `{name}`");
            continue;
        };
        let raw = std::fs::read_to_string(results.join(file_name))
            .map_err(|e| format!("reading {file_name}: {e}"))?;
        let doc: serde_json::Value =
            serde_json::from_str(&raw).map_err(|e| format!("{file_name}: {e}"))?;
        let spec = obs::BaselineSpec::new(file_name, checks, doc);
        let out = baselines.join(file_name);
        std::fs::write(&out, spec.to_json())
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
        println!("baseline {} ({} checks)", out.display(), spec.checks.len());
        wrote += 1;
    }
    if wrote == 0 {
        return Err(format!(
            "no gateable BENCH_*.json artifacts found in {}",
            results.display()
        ));
    }
    Ok(())
}
