//! Bring your own application: define a custom iterative dataflow with the
//! `dagflow` builder, give it Juggler's `Workload` interface, and let the
//! full offline-training pipeline find its caching schedules and cluster
//! configuration.
//!
//! The application here is a "sessionization + feature extraction"
//! pipeline: raw click logs are parsed, sessionized (a shuffle), and a
//! feature matrix is derived that an iterative scoring loop re-reads; two
//! report jobs share the session dataset.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use juggler_suite::cluster_sim::{NoiseParams, SimParams};
use juggler_suite::dagflow::{
    AppBuilder, Application, ComputeCost, NarrowKind, Schedule, SourceFormat, WideKind,
};
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::workloads::{Workload, WorkloadParams};

/// A click-stream scoring pipeline, parameterized like the ML workloads:
/// `examples` = click events, `features` = attributes per event.
struct ClickstreamScoring;

impl Workload for ClickstreamScoring {
    fn name(&self) -> &'static str {
        "CLICKS"
    }

    fn paper_params(&self) -> WorkloadParams {
        WorkloadParams::auto(50_000, 30_000, 20)
    }

    fn sim_params(&self) -> SimParams {
        SimParams {
            exec_mem_per_task_factor: 0.15,
            noise: NoiseParams::default(),
            ..SimParams::default()
        }
    }

    fn build(&self, p: &WorkloadParams) -> Application {
        let ef = p.ef();
        let parts = p.partitions;
        let parse = ComputeCost::new(0.002, 0.0, 5.0e-9);
        let light = ComputeCost::new(0.001, 0.0, 2.0e-11);
        let scan = ComputeCost::new(0.004, 0.0, 2.0e-9);
        let agg = ComputeCost::new(0.004, 0.0, 1.0e-9);

        let mut b = AppBuilder::new("clickstream");
        let logs = b.source(
            "clickLogs",
            SourceFormat::DistributedFs,
            p.examples,
            p.input_bytes(),
            parts,
        );
        let events = b.narrow(
            "events",
            NarrowKind::Map,
            &[logs],
            p.examples,
            (6.8 * ef) as u64,
            parse,
        );
        let sessions = b.wide(
            "sessions",
            WideKind::GroupByKey,
            &[events],
            p.examples / 4,
            (5.2 * ef) as u64,
            agg,
        );
        let matrix = b.narrow(
            "featureMatrix",
            NarrowKind::Map,
            &[sessions],
            p.examples / 4,
            (4.1 * ef) as u64,
            light,
        );

        // Iterative scoring over the feature matrix.
        for i in 0..p.iterations {
            let scores = b.narrow(
                format!("scores[{i}]"),
                NarrowKind::Map,
                &[matrix],
                p.examples / 4,
                16 * p.examples,
                scan,
            );
            let model = b.wide_with_partitions(
                format!("model[{i}]"),
                WideKind::TreeAggregate,
                &[scores],
                1,
                8 * p.features,
                1,
                agg,
            );
            b.job("treeAggregate", model);
        }

        // Two reports over the sessions dataset.
        for name in ["funnelReport", "retentionReport"] {
            let v = b.narrow(name, NarrowKind::Map, &[sessions], 1, 8, light);
            b.job("collect", v);
        }

        // The hypothetical developers cached nothing.
        b.default_schedule(Schedule::empty());
        b.build().expect("valid plan")
    }
}

fn main() {
    let w = ClickstreamScoring;
    println!("Training Juggler for the custom {} workload ...", w.name());
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).expect("training succeeds");

    println!("\nDiscovered schedules:");
    for (i, rs) in trained.schedules.iter().enumerate() {
        let names: Vec<String> = rs
            .schedule
            .persisted()
            .iter()
            .map(|&d| w.build(&w.sample_params()).dataset(d).name.clone())
            .collect();
        println!(
            "  #{} {:<18} caches [{}]",
            i + 1,
            rs.schedule.notation(),
            names.join(", ")
        );
    }

    let p = w.paper_params();
    let menu = trained.recommend(p.e(), p.f());
    println!(
        "\nRecommendations at {} events x {} attributes:",
        p.examples, p.features
    );
    for o in &menu.options {
        println!(
            "  {:<18} -> {:>2} machines, {:>8.1}s predicted, {:>6.1} machine-min",
            o.schedule.notation(),
            o.machines,
            o.predicted_time_s,
            o.predicted_cost_machine_min
        );
    }
    assert!(
        !trained.schedules.is_empty(),
        "the iterative matrix reuse must be detected as a hotspot"
    );
}
