//! Cluster advisor: sweep a workload across 1–12 machines for each of
//! Juggler's schedules and show the full time/cost trade-off space next
//! to Juggler's one-shot recommendation — the "what the end user would
//! have had to measure by hand" view of the paper's Figure 9.
//!
//! ```text
//! cargo run --release --example cluster_advisor [LIR|LOR|PCA|RFC|SVM]
//! ```

use juggler_suite::cluster_sim::{ClusterConfig, Engine, RunOptions};
use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::workloads::all_workloads;

fn main() {
    let wanted = std::env::args().nth(1).unwrap_or_else(|| "SVM".to_owned());
    let workload = all_workloads()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| panic!("unknown workload {wanted}; use LIR, LOR, PCA, RFC or SVM"));

    println!("Training Juggler for {} ...", workload.name());
    let trained = OfflineTraining::run(workload.as_ref(), &TrainingConfig::default())
        .expect("training succeeds");
    let params = workload.paper_params();
    let app = workload.build(&params);

    for (i, rs) in trained.schedules.iter().enumerate() {
        let recommended = trained.machines_for(i, params.e(), params.f());
        println!(
            "\nSchedule #{} = {}   (Juggler recommends {} machines)",
            i + 1,
            rs.schedule.notation(),
            recommended
        );
        println!(
            "{:>9}  {:>10}  {:>12}  {:>8}",
            "machines", "time", "cost (m-min)", ""
        );
        let mut best = (0u32, f64::INFINITY);
        let mut lines = Vec::new();
        for machines in 1..=trained.max_machines {
            let mut sim = workload.sim_params();
            sim.seed = 0xADB1 ^ u64::from(machines);
            let engine = Engine::new(&app, ClusterConfig::new(machines, trained.target_spec), sim);
            let report = engine
                .run(
                    &rs.schedule,
                    RunOptions {
                        collect_traces: false,
                        partition_skew: 0.15,
                        ..RunOptions::default()
                    },
                )
                .expect("run succeeds");
            let cost = report.cost_machine_minutes();
            if cost < best.1 {
                best = (machines, cost);
            }
            lines.push((machines, report.total_time_s, cost));
        }
        for (machines, time, cost) in lines {
            let mut marks = String::new();
            if machines == recommended {
                marks.push_str(" <- Juggler");
            }
            if machines == best.0 {
                marks.push_str(" (optimal)");
            }
            println!("{machines:>9}  {time:>9.1}s  {cost:>12.1}{marks}");
        }
    }
    println!(
        "\nPredicted menu at these parameters:\n{}",
        trained
            .recommend(params.e(), params.f())
            .options
            .iter()
            .map(|o| format!(
                "  {:<24} {} machines, {:.1}s, {:.1} machine-min",
                o.schedule.notation(),
                o.machines,
                o.predicted_time_s,
                o.predicted_cost_machine_min
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
