//! Failure drill: inject an executor loss mid-run and watch the lineage
//! machinery recover the cached blocks — with before/after Gantt views of
//! the task timeline.
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```
//!
//! For the full menu of fault plans (slow nodes, flaky tasks, memory
//! pressure, combinations) see `juggler chaos <WORKLOAD> --plan <NAME>`.

use juggler_suite::cluster_sim::{
    render_gantt, ClusterConfig, Engine, FaultPlan, MachineSpec, RunOptions,
};
use juggler_suite::dagflow::{DatasetId, Schedule};
use juggler_suite::workloads::{LogisticRegression, Workload, WorkloadParams};

fn main() {
    let w = LogisticRegression;
    let params = WorkloadParams::auto(14_000, 10_000, 8);
    let app = w.build(&params);
    let schedule = Schedule::persist_all([DatasetId(2)]);
    let cluster = ClusterConfig::new(3, MachineSpec::private_cluster());

    let run = |faults: FaultPlan| {
        let mut sim = w.sim_params();
        sim.seed = 0xD01;
        sim.faults = faults;
        Engine::new(&app, cluster, sim)
            .run(
                &schedule,
                RunOptions {
                    collect_traces: true,
                    partition_skew: 0.15,
                    ..RunOptions::default()
                },
            )
            .expect("run succeeds")
    };

    let healthy = run(FaultPlan::none());
    println!("— healthy run: {:.1}s —", healthy.total_time_s);
    print!("{}", render_gantt(&healthy, 100));

    let at_s = healthy.total_time_s * 0.6;
    let failed = run(FaultPlan::executor_loss(1, at_s));
    println!(
        "\n— executor on m1 lost at {:.0}s: {:.1}s total (+{:.1}s recovery) —",
        at_s,
        failed.total_time_s,
        failed.total_time_s - healthy.total_time_s
    );
    print!("{}", render_gantt(&failed, 100));
    for o in &failed.faults.outcomes {
        println!("fault: {} — {}", o.event.kind.describe(), o.detail);
    }

    let d = DatasetId(2);
    let h = &healthy.cache.per_dataset[&d];
    let f = &failed.cache.per_dataset[&d];
    println!(
        "\ncached dataset D2 ({} partitions):",
        app.dataset(d).partitions
    );
    println!(
        "  healthy: {} hits, {} misses, {} evictions",
        h.hits, h.misses, h.evictions
    );
    println!(
        "  failed:  {} hits, {} misses, {} evictions -> {} partitions resident at the end",
        f.hits, f.misses, f.evictions, f.resident_partitions
    );
    println!(
        "\nLineage recovery: the lost blocks were recomputed from the input and\n\
         re-cached (on surviving machines), costing one extra recomputation wave\n\
         — not a rerun. This is the \"Resilient\" in RDD, and why Juggler's\n\
         schedules stay valid across executor churn."
    );
}
