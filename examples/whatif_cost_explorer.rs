//! What-if cost explorer: once trained, Juggler answers pricing questions
//! *instantly* for any parameter combination — no experiments. This
//! example explores a grid of (examples, features) for SVM, under both
//! the paper's machine-minutes pricing and a tiered cloud price list
//! (§5.5: the cost model "can be replaced with other pricing models").
//!
//! ```text
//! cargo run --release --example whatif_cost_explorer
//! ```

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::juggler::{CostModel, TieredHourly};
use juggler_suite::workloads::{SupportVectorMachine, Workload};

fn main() {
    let w = SupportVectorMachine;
    println!("Training Juggler for {} ...", w.name());
    let trained = OfflineTraining::run(&w, &TrainingConfig::default()).expect("training succeeds");

    let cloud = TieredHourly {
        per_machine_hour: 0.34, // an m5.xlarge-style rate
        discount_threshold: 8,
        discount: 0.7,
    };

    println!(
        "\n{:>9} {:>9} | {:>26} | {:>26}",
        "examples", "features", "machine-minutes pricing", "tiered cloud pricing"
    );
    println!("{}", "-".repeat(80));
    for examples in [10_000u64, 20_000, 40_000, 80_000] {
        for features in [20_000u64, 80_000] {
            let menu_min = trained.recommend(examples as f64, features as f64);
            let menu_usd = trained.recommend_with(examples as f64, features as f64, &cloud);
            let a = menu_min.cheapest().expect("non-empty menu");
            let b = menu_usd.cheapest().expect("non-empty menu");
            println!(
                "{examples:>9} {features:>9} | {:>10} on {:>2}m, {:>6.1} mm | {:>10} on {:>2}m, ${:>6.2}",
                a.schedule.notation(),
                a.machines,
                a.predicted_cost_machine_min,
                b.schedule.notation(),
                b.machines,
                b.predicted_cost_machine_min,
            );
            // Under coarse hourly billing the cheapest schedule can differ
            // from the machine-minutes optimum — that is the point of a
            // pluggable cost model.
        }
    }

    println!(
        "\n(cloud pricing: ${}/machine-hour, {}% discount past {} machines, whole hours billed)",
        cloud.per_machine_hour,
        (1.0 - cloud.discount) * 100.0,
        cloud.discount_threshold
    );
    let _ = cloud.unit();
}
