//! Quickstart: train Juggler offline for one application, then ask it —
//! with no further experiments — which datasets to cache, how many
//! machines to rent, and what the run will cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use juggler_suite::juggler::pipeline::{OfflineTraining, TrainingConfig};
use juggler_suite::workloads::{LogisticRegression, Workload};

fn main() {
    let workload = LogisticRegression;

    // ── Offline training (paper Figure 8): one instrumented sample run,
    //    nine parameter-calibration runs, one memory-calibration run, and
    //    nine execution-time runs per schedule — all simulated. ──
    println!("Training Juggler for {} ...", workload.name());
    let trained = OfflineTraining::run(&workload, &TrainingConfig::default())
        .expect("offline training succeeds");

    println!("\nSchedules found by hotspot detection:");
    for (i, rs) in trained.schedules.iter().enumerate() {
        println!(
            "  #{} {:<24} benefit {:.2}s, budget {:.1} MB (at sample scale)",
            i + 1,
            rs.schedule.notation(),
            rs.benefit_s,
            rs.budget_bytes as f64 / 1e6
        );
    }
    println!(
        "\nMemory factor: {:.3} (fraction of Spark's unified region M usable for caching)",
        trained.memory_factor.factor
    );

    // ── Actual usage (paper §5.5): the end user picks application
    //    parameters; Juggler answers instantly from the trained models. ──
    let params = workload.paper_params();
    let menu = trained.recommend(params.e(), params.f());

    println!(
        "\nRecommendations for examples = {}, features = {}:",
        params.examples, params.features
    );
    for option in &menu.options {
        println!(
            "  {:<24} -> {:>2} machines, predicted {:>7.1}s, {:>6.1} machine-min",
            option.schedule.notation(),
            option.machines,
            option.predicted_time_s,
            option.predicted_cost_machine_min
        );
    }
    for dominated in &menu.dominated {
        println!(
            "  {:<24} (dominated: another schedule is faster AND cheaper)",
            dominated.schedule.notation()
        );
    }

    if let Some(best) = menu.cheapest() {
        println!(
            "\nCheapest plan: cache `{}` on {} machines.",
            best.schedule, best.machines
        );
    }
    println!(
        "Training spent {:.1} machine-minutes across {} simulated experiments.",
        trained.costs.total_machine_minutes(),
        trained.costs.hotspot.runs
            + trained.costs.param_calibration.runs
            + trained.costs.memory_calibration.runs
            + trained.costs.time_models.runs
    );
}
